"""Server state persistence.

A production moving-objects server restarts; re-deriving the density
histograms and polynomial coefficients would require replaying up to ``H``
timestamps of updates.  :func:`save_server` serialises the whole maintained
state — configuration, live motions, histogram counters and Chebyshev
coefficients — into a single ``.npz`` file, and :func:`load_server`
reconstructs an equivalent :class:`~repro.core.system.PDRServer`: the
TPR-tree is rebuilt by re-inserting the live motions (cheap, and the tree's
exact page layout is not semantically meaningful), while histogram and
polynomial state is restored bit-for-bit.
"""

from __future__ import annotations

import json
from typing import Union

import numpy as np

from ..core.config import SystemConfig
from ..core.errors import StorageError
from ..core.geometry import Rect
from ..core.system import PDRServer
from ..motion.model import Motion

__all__ = ["save_server", "load_server"]

_FORMAT_VERSION = 1


def _config_to_dict(config: SystemConfig) -> dict:
    return {
        "domain": list(config.domain.as_tuple()),
        "max_update_interval": config.max_update_interval,
        "prediction_window": config.prediction_window,
        "l": config.l,
        "histogram_cells": config.histogram_cells,
        "polynomial_grid": config.polynomial_grid,
        "polynomial_degree": config.polynomial_degree,
        "evaluation_grid": config.evaluation_grid,
    }


def _config_from_dict(data: dict) -> SystemConfig:
    x1, y1, x2, y2 = data["domain"]
    return SystemConfig(
        domain=Rect(x1, y1, x2, y2),
        max_update_interval=int(data["max_update_interval"]),
        prediction_window=int(data["prediction_window"]),
        l=float(data["l"]),
        histogram_cells=int(data["histogram_cells"]),
        polynomial_grid=int(data["polynomial_grid"]),
        polynomial_degree=int(data["polynomial_degree"]),
        evaluation_grid=int(data["evaluation_grid"]),
    )


def save_server(server: PDRServer, path: Union[str, "object"]) -> None:
    """Serialise the server's full maintained state to ``path`` (.npz)."""
    motions = list(server.table.motions())
    motion_array = np.array(
        [(m.oid, m.t_ref, m.x, m.y, m.vx, m.vy) for m in motions], dtype=float
    ).reshape(len(motions), 6)
    hist_state = server.histogram.state_arrays()
    pa_state = server.pa.state_arrays()
    np.savez_compressed(
        path,
        format_version=np.int64(_FORMAT_VERSION),
        config_json=np.bytes_(json.dumps(_config_to_dict(server.config)).encode()),
        tnow=np.int64(server.tnow),
        motions=motion_array,
        hist_counts=hist_state["counts"],
        hist_slot_time=hist_state["slot_time"],
        pa_coeffs=pa_state["coeffs"],
        pa_slot_time=pa_state["slot_time"],
    )


def load_server(path: Union[str, "object"], expected_objects: int = 0) -> PDRServer:
    """Reconstruct a server from :func:`save_server` output.

    ``expected_objects`` sizes the buffer pool; it defaults to the snapshot's
    object count.
    """
    with np.load(path, allow_pickle=False) as data:
        version = int(data["format_version"])
        if version != _FORMAT_VERSION:
            raise StorageError(
                f"snapshot format {version} not supported (expected {_FORMAT_VERSION})"
            )
        config = _config_from_dict(json.loads(bytes(data["config_json"]).decode()))
        tnow = int(data["tnow"])
        motion_array = data["motions"]
        motions = [
            Motion(int(row[0]), int(row[1]), row[2], row[3], row[4], row[5])
            for row in motion_array
        ]
        server = PDRServer(
            config,
            expected_objects=expected_objects or max(len(motions), 1),
            tnow=tnow,
        )
        server.table.restore(motions, tnow)
        server.histogram.load_state_arrays(
            {
                "counts": data["hist_counts"],
                "slot_time": data["hist_slot_time"],
                "tnow": tnow,
            }
        )
        server.pa.load_state_arrays(
            {
                "coeffs": data["pa_coeffs"],
                "slot_time": data["pa_slot_time"],
                "tnow": tnow,
            }
        )
    # Rebuild the index by direct insertion (the table must NOT re-notify
    # the histogram/PA listeners, whose state is already restored).
    for motion in motions:
        server.tree.insert(motion)
    return server
