"""LRU buffer pool simulator.

The pool tracks which page ids are resident and charges
``random_io_seconds`` for every miss.  It does not hold page *contents* —
the TPR-tree keeps its nodes in Python objects — it exists purely so that
query evaluation pays a faithful I/O bill (Section 7.3: each random I/O is
charged 10 ms, buffer = 10 % of the dataset).
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass

from ..core.errors import InvalidParameterError

__all__ = ["BufferPool", "IOStats"]


@dataclass
class IOStats:
    """Cumulative buffer-pool counters."""

    hits: int = 0
    misses: int = 0

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def hit_ratio(self) -> float:
        return self.hits / self.accesses if self.accesses else 0.0


class BufferPool:
    """A capacity-bounded LRU set of resident page ids."""

    def __init__(
        self,
        capacity_pages: int,
        random_io_seconds: float = 0.010,
        faults=None,
    ) -> None:
        if capacity_pages < 1:
            raise InvalidParameterError(f"buffer capacity must be >= 1, got {capacity_pages}")
        if random_io_seconds < 0:
            raise InvalidParameterError("random_io_seconds must be >= 0")
        self._capacity = capacity_pages
        self._io_seconds_per_miss = random_io_seconds
        self._resident: "OrderedDict[int, None]" = OrderedDict()
        self._faults = faults
        self.stats = IOStats()
        # Serving runs read-only queries on a thread pool; the LRU list and
        # the counters are the one piece of index state every traversal
        # mutates, so they get their own lock (check-then-move on the
        # OrderedDict is not atomic).
        self._lock = threading.RLock()

    @property
    def capacity(self) -> int:
        return self._capacity

    @property
    def io_seconds_per_miss(self) -> float:
        return self._io_seconds_per_miss

    def resize(self, capacity_pages: int) -> None:
        """Change capacity, evicting LRU pages if shrinking."""
        if capacity_pages < 1:
            raise InvalidParameterError(f"buffer capacity must be >= 1, got {capacity_pages}")
        with self._lock:
            self._capacity = capacity_pages
            while len(self._resident) > self._capacity:
                self._resident.popitem(last=False)

    def access(self, page_id: int) -> bool:
        """Touch ``page_id``; returns True on a hit, False on a miss.

        A miss goes to the (simulated) device and is therefore a fault
        site: an injected error raises *before* the page is counted or
        made resident, exactly like a failed read.
        """
        with self._lock:
            if page_id in self._resident:
                self._resident.move_to_end(page_id)
                self.stats.hits += 1
                return True
            if self._faults is not None:
                self._faults.hit("buffer.io")
            self.stats.misses += 1
            self._resident[page_id] = None
            if len(self._resident) > self._capacity:
                self._resident.popitem(last=False)
            return False

    def invalidate(self, page_id: int) -> None:
        """Drop a page (e.g. after a node is freed by the index)."""
        with self._lock:
            self._resident.pop(page_id, None)

    def contains(self, page_id: int) -> bool:
        with self._lock:
            return page_id in self._resident

    def clear(self) -> None:
        with self._lock:
            self._resident.clear()

    # ------------------------------------------------------------------
    # accounting
    # ------------------------------------------------------------------
    def reset_stats(self) -> IOStats:
        """Zero the counters, returning the previous values."""
        with self._lock:
            old, self.stats = self.stats, IOStats()
            return old

    def charged_seconds(self, stats: IOStats = None) -> float:
        """I/O time charged for ``stats`` (default: the live counters)."""
        s = self.stats if stats is None else stats
        return s.misses * self._io_seconds_per_miss

    def __len__(self) -> int:
        return len(self._resident)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"BufferPool(capacity={self._capacity}, resident={len(self._resident)}, "
            f"hits={self.stats.hits}, misses={self.stats.misses})"
        )
