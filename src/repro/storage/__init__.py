"""Simulated storage: page model and LRU buffer pool with I/O accounting."""

from .buffer import BufferPool, IOStats
from .pages import DEFAULT_PAGE_MODEL, PageModel

__all__ = ["BufferPool", "IOStats", "PageModel", "DEFAULT_PAGE_MODEL"]
