"""Pointwise-Dense Region (PDR) queries in spatio-temporal databases.

A full reproduction of Ni & Ravishankar, *"Pointwise-Dense Region Queries in
Spatio-temporal Databases"* (ICDE 2007): the PDR query model, the exact
filtering-refinement evaluator (density histograms + TPR-tree + plane
sweep), the approximate Chebyshev-polynomial evaluator, the baselines the
paper compares against, and the full experiment harness for its evaluation
section.

Quickstart::

    from repro import PDRServer, SystemConfig

    server = PDRServer(SystemConfig(), expected_objects=1000)
    server.report(oid=0, x=500.0, y=500.0, vx=0.5, vy=0.0)
    ...
    result = server.query("fr", qt=server.tnow, varrho=2.0)
    for rect in result.regions:
        print(rect)
"""

from .core.config import DEFAULT_DOMAIN, SystemConfig
from .core.errors import (
    DatagenError,
    GeometryError,
    HorizonError,
    InvalidParameterError,
    QueryError,
    ReproError,
    StorageError,
)
from .core.geometry import Point, Rect
from .core.query import (
    IntervalPDRQuery,
    QueryResult,
    QueryStats,
    SnapshotPDRQuery,
    relative_to_absolute_threshold,
)
from .core.regions import RegionSet
from .core.system import PDRServer
from .motion.model import Motion
from .motion.table import ObjectTable

__version__ = "1.0.0"

__all__ = [
    "DEFAULT_DOMAIN",
    "SystemConfig",
    "PDRServer",
    "Point",
    "Rect",
    "RegionSet",
    "Motion",
    "ObjectTable",
    "SnapshotPDRQuery",
    "IntervalPDRQuery",
    "QueryResult",
    "QueryStats",
    "relative_to_absolute_threshold",
    "ReproError",
    "InvalidParameterError",
    "GeometryError",
    "QueryError",
    "HorizonError",
    "StorageError",
    "DatagenError",
]
