"""Traffic management: predict where congestion will be, before it forms.

The motivating application of the paper's introduction: a traffic database
that can *predict* dense regions lets commuters route around jams that have
not formed yet.  We simulate rush-hour traffic on a synthetic metropolitan
road network (vehicles stream toward the business district), then ask
predictive snapshot PDR queries at "now", "now + 20" and "now + 40"
timestamps and render how the hotspot picture evolves.

Also demonstrates the density *contour* extraction the Chebyshev
representation enables (Section 6): an explicit overview of the density
surface at the query threshold.

Run with::

    python examples/traffic_hotspots.py
"""

from __future__ import annotations

from repro import PDRServer, SystemConfig
from repro.chebyshev.contours import contour_segments
from repro.datagen import SpeedModel, TripSimulator, synthetic_metro
from repro.experiments.viz import render_points, render_region, side_by_side

N_VEHICLES = 3000
VARRHO = 3.0  # three times the metro-wide average density


def main() -> None:
    config = SystemConfig()
    server = PDRServer(config, expected_objects=N_VEHICLES)
    network = synthetic_metro(config.domain, grid_n=30, seed=11)
    sim = TripSimulator(
        network,
        n_objects=N_VEHICLES,
        update_interval=config.max_update_interval,
        speed_model=SpeedModel(v_min_mph=25, v_max_mph=100),
        seed=11,
    )
    sim.initialize(server.table)
    sim.run_until(server.table, 30)  # warm up half an update cycle
    print(
        f"simulated {server.object_count()} vehicles, "
        f"{sim.reports_issued} location reports, t_now = {server.tnow}"
    )

    panels = []
    for offset in (0, 20, 40):
        qt = server.tnow + offset
        result = server.query("pa", qt=qt, varrho=VARRHO)
        panels.append(
            (
                f"hotspots at t_now+{offset} (area {result.area():,.0f})",
                render_region(result.regions, config.domain, width=44, height=22),
            )
        )
    snapshot = [(x, y) for (_o, x, y) in server.table.positions_at(server.tnow)]
    panels.insert(
        0,
        ("vehicles now", render_points(snapshot, config.domain, width=44, height=22)),
    )
    print()
    print(side_by_side(panels[:2]))
    print()
    print(side_by_side(panels[2:]))

    # Exact check at the prediction horizon: does FR agree with PA?
    qt = server.tnow + 40
    query = server.make_query(qt=qt, varrho=VARRHO)
    exact = server.evaluate("fr", query)
    approx = server.evaluate("pa", query)
    inter = exact.regions.intersection_area(approx.regions)
    union = exact.area() + approx.area() - inter
    print(
        f"\nat t_now+40: FR area {exact.area():,.0f} "
        f"(cpu {exact.stats.cpu_seconds:.2f}s + io {exact.stats.io_seconds:.1f}s), "
        f"PA area {approx.area():,.0f} (cpu {approx.stats.cpu_seconds:.3f}s), "
        f"Jaccard {inter / union:.2f}"
    )

    # Contour overview of the predicted density surface.
    surface = server.pa.surface_at(qt)
    segments = contour_segments(surface, level=query.rho, resolution=96)
    print(
        f"density contour at rho={query.rho:.4g}: "
        f"{len(segments)} marching-squares segments "
        f"(an explicit overview of the predicted distribution)"
    )


if __name__ == "__main__":
    main()
