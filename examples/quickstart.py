"""Quickstart: build a PDR server by hand and query it with every method.

Run with::

    python examples/quickstart.py

Creates a tiny world of 400 vehicles — two deliberate clusters plus
background traffic — and asks the server where the point density exceeds
twice the average, both exactly (FR) and approximately (PA), at the current
time and 30 timestamps into the future.
"""

from __future__ import annotations

import numpy as np

from repro import PDRServer, SystemConfig

N_BACKGROUND = 240
N_CLUSTER = 80  # per cluster


def build_server(seed: int = 42) -> PDRServer:
    rng = np.random.default_rng(seed)
    config = SystemConfig()  # 1000 x 1000 mile domain, U=60, W=60, l=30
    server = PDRServer(config, expected_objects=N_BACKGROUND + 2 * N_CLUSTER)

    oid = 0
    # Background traffic: uniform positions, random slow headings.
    for _ in range(N_BACKGROUND):
        x, y = rng.uniform(50, 950, size=2)
        vx, vy = rng.uniform(-0.5, 0.5, size=2)
        server.report(oid, float(x), float(y), float(vx), float(vy))
        oid += 1
    # Cluster 1: a jam near the centre, barely moving.
    for _ in range(N_CLUSTER):
        x, y = rng.normal([500, 500], 12, size=2)
        server.report(oid, float(x), float(y), 0.02, 0.0)
        oid += 1
    # Cluster 2: a convoy heading north-east; dense *later*, elsewhere.
    for _ in range(N_CLUSTER):
        x, y = rng.normal([250, 250], 15, size=2)
        server.report(oid, float(x), float(y), 1.2, 1.2)
        oid += 1
    return server


def describe(result, label: str) -> None:
    print(f"{label}: {len(result.regions)} rectangles, "
          f"area {result.area():,.0f} sq miles, "
          f"cpu {result.stats.cpu_seconds * 1000:.1f} ms, "
          f"io {result.stats.io_count} pages")
    box = result.regions.bounding_box()
    if box is not None:
        print(f"    bounding box: ({box.x1:.0f}, {box.y1:.0f}) - "
              f"({box.x2:.0f}, {box.y2:.0f})")


def main() -> None:
    server = build_server()
    print(f"server holds {server.object_count()} objects at t={server.tnow}")
    print("memory:", {k: f"{v / 1e6:.1f} MB" if k != "buffer_pages" else v
                      for k, v in server.memory_report().items()})

    # With 400 objects on 10^6 sq miles the average density is tiny; ask for
    # regions 20x the average so only the genuine clusters qualify.
    for qt, when in [(0, "now"), (30, "in 30 timestamps")]:
        print(f"\n=== dense regions {when} (qt={qt}, varrho=20) ===")
        exact = server.query("fr", qt=qt, varrho=20.0)
        approx = server.query("pa", qt=qt, varrho=20.0)
        describe(exact, "FR (exact)  ")
        describe(approx, "PA (approx.)")
        overlap = exact.regions.intersection_area(approx.regions)
        union = exact.area() + approx.area() - overlap
        print(f"    agreement (Jaccard): {overlap / union:.2f}" if union else "")

    # The convoy makes a *future* region dense: an interval query sees both.
    print("\n=== interval query [0, 60], varrho=20, method=pa ===")
    interval = server.query_interval("pa", qt1=0, qt2=60, varrho=20.0)
    print(f"union over 61 snapshots: {len(interval.regions)} rectangles, "
          f"area {interval.area():,.0f} sq miles, "
          f"total cpu {interval.stats.cpu_seconds:.2f} s")


if __name__ == "__main__":
    main()
