"""Live congestion monitoring: a standing PDR query over a moving world.

An operations room does not re-issue queries by hand — it keeps a standing
predictive query ("where will density exceed threshold 15 minutes from
now?") and wants to be told *what changed*.  This example attaches a
:class:`~repro.methods.monitor.PDRMonitor` to a simulated city, steps the
world forward, and logs every tick on which the hotspot picture moved.

Run with::

    python examples/live_monitoring.py
"""

from __future__ import annotations

from repro import PDRServer, SystemConfig
from repro.datagen import TripSimulator, synthetic_metro
from repro.methods.monitor import PDRMonitor

N_VEHICLES = 1500
OFFSET = 15  # predictive offset (timestamps ahead of now)
EVERY = 5  # evaluate every 5 timestamps
STEPS = 40


def main() -> None:
    config = SystemConfig()
    server = PDRServer(config, expected_objects=N_VEHICLES)
    network = synthetic_metro(config.domain, grid_n=25, seed=21)
    sim = TripSimulator(network, N_VEHICLES, config.max_update_interval, seed=21)
    sim.initialize(server.table)

    monitor = PDRMonitor(server, offset=OFFSET, every=EVERY, method="pa", varrho=3.0)
    server.table.add_listener(monitor)

    print(
        f"standing query: density >= 3x average, {OFFSET} timestamps ahead, "
        f"re-evaluated every {EVERY} ticks while {N_VEHICLES} vehicles move\n"
    )
    for _ in range(STEPS):
        sim.step(server.table)

    print(f"{len(monitor.events)} evaluations over {STEPS} timestamps:")
    for event in monitor.events:
        marker = "*" if event.changed else " "
        print(
            f" {marker} t={event.tnow:3d} -> qt={event.qt:3d}: "
            f"area {event.regions.area():9,.0f} sq mi "
            f"(+{event.appeared_area:8,.0f} / -{event.vanished_area:8,.0f}), "
            f"{event.result.stats.cpu_seconds * 1000:5.1f} ms"
        )

    changed = monitor.changed_events()
    print(
        f"\n{len(changed)} of {len(monitor.events)} evaluations changed the "
        "hotspot picture — the dispatcher only needs to look at those."
    )


if __name__ == "__main__":
    main()
