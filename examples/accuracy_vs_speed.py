"""Choosing a PA configuration: the accuracy / latency / memory trade-off.

The exact FR method pays for I/O and plane-sweeps; the PA method answers
from in-memory polynomial coefficients.  How many polynomials and what
degree do you need?  This example sweeps (g, k) against the exact answer on
a realistic road-network workload and prints a decision table — the same
trade-off the paper's Figure 8(c,d) plots, in a form a practitioner can act
on.

Run with::

    python examples/accuracy_vs_speed.py
"""

from __future__ import annotations

from repro import SnapshotPDRQuery, SystemConfig
from repro.core.system import PDRServer
from repro.datagen import TripSimulator, synthetic_metro
from repro.experiments.report import format_table
from repro.methods.pa import PAMethod
from repro.metrics import RasterMeasure

N_VEHICLES = 2000
VARRHO = 2.0
CONFIGS = [(8, 3), (12, 4), (20, 3), (20, 5), (28, 5)]  # (g, k)


def main() -> None:
    config = SystemConfig()
    server = PDRServer(config, expected_objects=N_VEHICLES)

    # Maintain one extra PA structure per candidate configuration, all fed
    # by the same update stream.
    variants = {}
    for g, k in CONFIGS:
        pa = PAMethod(config.domain, l=config.l, horizon=config.horizon, g=g, k=k)
        server.table.add_listener(pa)
        variants[(g, k)] = pa

    network = synthetic_metro(config.domain, grid_n=30, seed=5)
    sim = TripSimulator(network, N_VEHICLES, config.max_update_interval, seed=5)
    sim.initialize(server.table)
    sim.run_until(server.table, 20)

    qt = server.tnow + 10
    query: SnapshotPDRQuery = server.make_query(qt=qt, varrho=VARRHO)
    exact = server.evaluate("fr", query)
    raster = RasterMeasure(config.domain, resolution=1024)

    rows = []
    for (g, k), pa in sorted(variants.items(), key=lambda v: v[1].memory_bytes()):
        result = pa.query(query)
        report = raster.accuracy(exact.regions, result.regions)
        rows.append(
            {
                "g": g,
                "k": k,
                "memory_mb": pa.memory_bytes() / 1e6,
                "query_ms": result.stats.cpu_seconds * 1000,
                "r_fp_pct": 100 * report.r_fp,
                "r_fn_pct": 100 * report.r_fn,
                "jaccard": report.jaccard,
            }
        )
    rows.append(
        {
            "g": "-",
            "k": "-",
            "memory_mb": server.histogram.memory_bytes() / 1e6,
            "query_ms": 1000 * (exact.stats.cpu_seconds),
            "r_fp_pct": 0.0,
            "r_fn_pct": 0.0,
            "jaccard": 1.0,
        }
    )
    print(
        format_table(
            rows,
            title=(
                f"PA configurations vs exact FR "
                f"({N_VEHICLES} vehicles, varrho={VARRHO:g}, l={config.l:g}; "
                f"last row = FR itself, io cost "
                f"{exact.stats.io_seconds:.1f}s not shown)"
            ),
        )
    )
    print(
        "\nreading: more polynomials (g) buys locality, higher degree (k) buys "
        "sharpness; past g=20, k=5 the error flattens while memory keeps "
        "growing — matching the paper's choice of 400 degree-5 polynomials."
    )


if __name__ == "__main__":
    main()
