"""Dispatch analytics: top-k hot spots, range counts, GeoJSON export.

Beyond dense-region queries, the maintained PA surface answers the other
questions a dispatch dashboard asks — all without touching the raw objects:

* *Where are the k busiest locations?*  Best-first branch-and-bound over
  the Chebyshev surface (:func:`repro.methods.topk.top_k_peaks`).
* *Roughly how many vehicles are in this district?*  Closed-form integral
  of the surface (:func:`repro.methods.estimate.estimate_count_pa`),
  cross-checked against the histogram estimator and the exact count.
* *Give me the hotspot polygons for the map overlay.*  GeoJSON export of
  the dense-region answer (:meth:`repro.core.regions.RegionSet.to_geojson`).

Run with::

    python examples/dispatch_analytics.py
"""

from __future__ import annotations

import json

from repro import PDRServer, Rect, SystemConfig
from repro.datagen import TripSimulator, synthetic_metro
from repro.methods import (
    estimate_count_dh,
    estimate_count_pa,
    exact_count,
    top_k_peaks,
)

N_VEHICLES = 2500


def main() -> None:
    config = SystemConfig()
    server = PDRServer(config, expected_objects=N_VEHICLES)
    network = synthetic_metro(config.domain, grid_n=30, seed=13)
    sim = TripSimulator(network, N_VEHICLES, config.max_update_interval, seed=13)
    sim.initialize(server.table)
    sim.run_until(server.table, 20)
    qt = server.tnow + 10  # a 10-timestamp-ahead prediction

    # --- top-k hot spots -------------------------------------------------
    peaks = top_k_peaks(server.pa, qt, k=4, separation=80.0)
    print(f"top {len(peaks)} predicted hot spots at t={qt}:")
    for rank, peak in enumerate(peaks, start=1):
        print(
            f"  {rank}. ({peak.x:6.1f}, {peak.y:6.1f})  "
            f"~{peak.density * config.l**2:.0f} vehicles per {config.l:g}-mile square"
        )

    # --- district counts --------------------------------------------------
    districts = {
        "downtown": Rect(400.0, 350.0, 650.0, 600.0),
        "north-west": Rect(100.0, 600.0, 350.0, 850.0),
        "rural east": Rect(850.0, 100.0, 1000.0, 250.0),
    }
    print("\ndistrict vehicle counts (exact / histogram est. / surface est.):")
    for name, rect in districts.items():
        exact = exact_count(server.table, rect, qt, config.horizon)
        dh = estimate_count_dh(server.histogram, rect, qt)
        pa = estimate_count_pa(server.pa, rect, qt)
        print(f"  {name:11s}: {exact:4d} / {dh:7.1f} / {pa:7.1f}")

    # --- polygons for the map overlay --------------------------------------
    hotspots = server.query("pa", qt=qt, varrho=3.0)
    geo = hotspots.regions.to_geojson()
    n_polys = len(geo["coordinates"])
    blob = json.dumps(geo)
    print(
        f"\nhotspot overlay: {len(hotspots.regions)} rectangles -> "
        f"{n_polys} GeoJSON polygons ({len(blob):,} bytes)"
    )
    rings = hotspots.regions.boundary_rings()
    print(f"boundary extraction: {len(rings)} rings, "
          f"{sum(len(r) for r in rings)} vertices total")


if __name__ == "__main__":
    main()
