"""Fleet rebalancing: find demand hotspots — and why PDR beats prior queries.

A ride-hailing operator wants to pre-position idle vehicles where demand
(here: the density of active customers) will be high over the next half
hour.  This example uses an *interval* PDR query (Definition 5) to union
hotspots over the dispatch window, then contrasts the PDR answer with the
two prior query types the paper criticises (Section 1.1):

* dense-cell queries miss clusters that straddle cell boundaries
  (**answer loss**, Figure 1(a));
* effective density queries report only one of several overlapping dense
  squares, and *which* one depends on the reporting strategy
  (**ambiguity**, Figure 1(b)).

Run with::

    python examples/fleet_rebalancing.py
"""

from __future__ import annotations

import numpy as np

from repro import PDRServer, SystemConfig
from repro.baselines import dense_cell_query, edq_report_ambiguity
from repro.experiments.viz import render_region, side_by_side

N_CUSTOMERS = 900


def build_demand(seed: int = 3) -> PDRServer:
    """Customers: three hotspots drifting at different speeds + background."""
    rng = np.random.default_rng(seed)
    config = SystemConfig()
    server = PDRServer(config, expected_objects=N_CUSTOMERS)
    oid = 0
    hotspots = [
        ((300.0, 300.0), (0.0, 0.0), 220),  # stationary downtown cluster
        ((650.0, 400.0), (0.8, 0.6), 180),  # event crowd moving north-east
        ((400.0, 750.0), (-0.4, 0.0), 160),  # airport queue drifting west
    ]
    for (cx, cy), (vx, vy), count in hotspots:
        for _ in range(count):
            x, y = rng.normal([cx, cy], 18, size=2)
            server.report(oid, float(x), float(y), vx, vy)
            oid += 1
    while oid < N_CUSTOMERS:
        x, y = rng.uniform(30, 970, size=2)
        vx, vy = rng.uniform(-0.3, 0.3, size=2)
        server.report(oid, float(x), float(y), float(vx), float(vy))
        oid += 1
    return server


def main() -> None:
    server = build_demand()
    config = server.config
    varrho = 15.0  # demand must be 15x the city-wide average to rebalance

    # Where should vehicles go over the next 30 timestamps?
    window = server.query_interval("pa", qt1=0, qt2=30, varrho=varrho)
    snapshot = server.query("fr", qt=0, varrho=varrho)
    print(
        f"{server.object_count()} active customers; rebalancing window [0, 30]\n"
        f"snapshot hotspots now: area {snapshot.area():,.0f} sq miles; "
        f"union over the window: area {window.area():,.0f} sq miles"
    )
    print()
    print(
        side_by_side(
            [
                (
                    "hotspots at t=0 (exact FR)",
                    render_region(snapshot.regions, config.domain, 40, 20),
                ),
                (
                    "union over [0, 30] (PA)",
                    render_region(window.regions, config.domain, 40, 20),
                ),
            ]
        )
    )

    # --- why not dense-cell queries? (answer loss) ---------------------
    query = server.make_query(qt=0, varrho=varrho)
    cells = dense_cell_query(server.histogram, query)
    missed = snapshot.regions.difference_area(cells.regions)
    print(
        f"\ndense-cell baseline: reports {len(cells.regions)} cells, "
        f"area {cells.area():,.0f}; "
        f"misses {missed:,.0f} sq miles of genuinely dense area "
        f"({100 * missed / snapshot.area():.0f}% answer loss)"
    )

    # --- why not effective density queries? (ambiguity) ----------------
    positions = [(x, y) for (_o, x, y) in server.table.positions_at(0)]
    answer_a, answer_b = edq_report_ambiguity(positions, config.domain, query)
    sym_diff = answer_a.regions.symmetric_difference_area(answer_b.regions)
    print(
        f"EDQ baseline: strategy A reports {len(answer_a.regions)} squares, "
        f"strategy B reports {len(answer_b.regions)} squares; "
        f"their answers differ on {sym_diff:,.0f} sq miles — "
        "two 'correct' answers to the same query"
    )
    print(
        "PDR reports every dense point exactly once: "
        "complete (no answer loss) and unique (no reporting strategy)"
    )


if __name__ == "__main__":
    main()
