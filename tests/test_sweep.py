"""Tests for the plane-sweep refinement (Algorithms 2-3, Lemmas 1-2)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.errors import InvalidParameterError
from repro.core.geometry import Rect, point_in_square
from repro.sweep.plane_sweep import dense_segments_1d, refine_cell

CELL = Rect(0.0, 0.0, 100.0, 100.0)


def brute_dense_mask(positions, cell, l, min_count, probes):
    """Reference density test on a list of probe points."""
    out = []
    for px, py in probes:
        count = sum(
            1 for ox, oy in positions if point_in_square(ox, oy, px, py, l)
        )
        out.append(count >= min_count - 1e-9)
    return out


class TestDenseSegments1D:
    def test_empty_objects_zero_threshold(self):
        assert dense_segments_1d(np.array([]), 5.0, 0.0, 10.0, 0.0) == [(0.0, 10.0)]

    def test_empty_objects_positive_threshold(self):
        assert dense_segments_1d(np.array([]), 5.0, 0.0, 10.0, 1.0) == []

    def test_single_object(self):
        # Object at 50, half=5: centres in [45, 55) cover it.
        segs = dense_segments_1d(np.array([50.0]), 5.0, 0.0, 100.0, 1.0)
        assert segs == [(45.0, 55.0)]

    def test_single_object_clipped(self):
        segs = dense_segments_1d(np.array([2.0]), 5.0, 0.0, 100.0, 1.0)
        assert segs == [(0.0, 7.0)]

    def test_two_objects_need_both(self):
        # Objects at 48 and 52, half=5: both covered for c in [47, 53).
        segs = dense_segments_1d(np.array([48.0, 52.0]), 5.0, 0.0, 100.0, 2.0)
        assert len(segs) == 1
        lo, hi = segs[0]
        assert lo == pytest.approx(47.0)
        assert hi == pytest.approx(53.0)

    def test_merges_touching_segments(self):
        # Two objects far enough apart that single-coverage regions touch.
        segs = dense_segments_1d(np.array([45.0, 55.0]), 5.0, 0.0, 100.0, 1.0)
        assert segs == [(40.0, 60.0)]

    def test_disjoint_segments(self):
        segs = dense_segments_1d(np.array([20.0, 80.0]), 5.0, 0.0, 100.0, 1.0)
        assert segs == [(15.0, 25.0), (75.0, 85.0)]

    def test_count_at_left_boundary(self):
        # Object whose coverage interval starts exactly at lo.
        segs = dense_segments_1d(np.array([5.0]), 5.0, 0.0, 100.0, 1.0)
        assert segs[0][0] == 0.0

    @given(
        st.lists(st.floats(0, 100), max_size=15),
        st.floats(1, 20),
        st.integers(1, 4),
        st.integers(0, 200),
    )
    @settings(max_examples=80)
    def test_against_pointwise_check(self, coords, half, min_count, probe_int):
        """Segment membership == brute-force cover count at probe points."""
        probe = probe_int / 2.0
        coords_arr = np.array(coords, dtype=float)
        segs = dense_segments_1d(coords_arr, half, 0.0, 100.0, float(min_count))
        in_segs = any(lo <= probe < hi for lo, hi in segs)
        count = int(np.sum((coords_arr - half <= probe) & (probe < coords_arr + half)))
        assert in_segs == (count >= min_count and 0.0 <= probe < 100.0)


class TestRefineCellBasics:
    def test_invalid_l(self):
        with pytest.raises(InvalidParameterError):
            refine_cell([], CELL, -1.0, 1.0)

    def test_empty_cell(self):
        assert refine_cell([(1, 1)], Rect(5, 5, 5, 9), 10.0, 1.0).is_empty()

    def test_no_objects_positive_threshold(self):
        assert refine_cell([], CELL, 10.0, 1.0).is_empty()

    def test_no_objects_zero_threshold(self):
        region = refine_cell([], CELL, 10.0, 0.0)
        assert region.area() == pytest.approx(CELL.area)

    def test_single_object_square(self):
        region = refine_cell([(50.0, 50.0)], CELL, 10.0, 1.0)
        # Influence region: [45, 55) x [45, 55).
        assert region.area() == pytest.approx(100.0)
        assert region.contains_point(45.0, 45.0)
        assert region.contains_point(54.9, 54.9)
        assert not region.contains_point(55.0, 50.0)
        assert not region.contains_point(44.9, 50.0)

    def test_figure1a_answer_loss_scenario(self):
        """Four objects around a cell corner: PDR finds the dense square.

        This is the paper's Figure 1(a): none of the four unit cells holds
        rho objects, but the dashed square straddling the corner does.
        """
        l = 10.0
        objects = [(48.0, 48.0), (52.0, 48.0), (48.0, 52.0), (52.0, 52.0)]
        region = refine_cell(objects, CELL, l, 4.0)
        assert not region.is_empty()
        # The centre point (50, 50) covers all four objects.
        assert region.contains_point(50.0, 50.0)
        # A far-away point does not.
        assert not region.contains_point(20.0, 20.0)

    def test_local_density_guarantee(self):
        """Figure 1(c): a region dense on average but empty near a corner
        must exclude the empty corner (PDR's local-density guarantee)."""
        gen = np.random.default_rng(5)
        # 12 objects packed in [40,46]^2; nothing near (60, 60).
        objects = [
            (float(gen.uniform(40, 46)), float(gen.uniform(40, 46)))
            for _ in range(12)
        ]
        region = refine_cell(objects, CELL, 10.0, 6.0)
        assert region.contains_point(43.0, 43.0)
        assert not region.contains_point(60.0, 60.0)

    def test_result_clipped_to_cell(self):
        region = refine_cell([(1.0, 1.0)], Rect(0, 0, 10, 10), 30.0, 1.0)
        box = region.bounding_box()
        assert box is not None
        assert Rect(0, 0, 10, 10).contains_rect(box)

    def test_objects_outside_cell_still_count(self):
        # An object left of the cell influences the cell's left margin.
        region = refine_cell([(-2.0, 50.0)], Rect(0, 0, 10, 100), 10.0, 1.0)
        assert region.contains_point(0.0, 50.0)
        assert region.contains_point(2.9, 50.0)
        assert not region.contains_point(3.0, 50.0)


class TestRefineCellAgainstBruteForce:
    @given(
        st.lists(
            st.tuples(st.floats(-10, 110), st.floats(-10, 110)), max_size=20
        ),
        st.floats(4, 40),
        st.integers(1, 5),
        st.integers(0, 10_000),
    )
    @settings(max_examples=60, deadline=None)
    def test_membership_matches_pointwise_density(self, positions, l, min_count, seed):
        region = refine_cell(positions, CELL, l, float(min_count))
        gen = np.random.default_rng(seed)
        probes = [(float(gen.uniform(0, 100)), float(gen.uniform(0, 100)))
                  for _ in range(40)]
        expected = brute_dense_mask(positions, CELL, l, min_count, probes)
        actual = [region.contains_point(px, py) for px, py in probes]
        assert actual == expected

    @given(
        st.lists(
            st.tuples(st.integers(0, 50), st.integers(0, 50)).map(
                lambda t: (float(t[0] * 2), float(t[1] * 2))
            ),
            max_size=15,
        ),
        st.integers(1, 3),
    )
    @settings(max_examples=40, deadline=None)
    def test_exact_on_event_boundaries(self, positions, min_count):
        """Probe exactly at sweep-event coordinates (half-open edges)."""
        l = 10.0
        region = refine_cell(positions, CELL, l, float(min_count))
        probes = []
        for ox, oy in positions[:5]:
            probes.extend(
                [
                    (ox - l / 2, oy - l / 2),
                    (ox + l / 2, oy + l / 2),
                    (ox - l / 2, oy),
                    (ox, oy + l / 2),
                ]
            )
        probes = [(px, py) for px, py in probes if 0 <= px < 100 and 0 <= py < 100]
        expected = brute_dense_mask(positions, CELL, l, min_count, probes)
        actual = [region.contains_point(px, py) for px, py in probes]
        assert actual == expected

    @given(
        st.lists(st.tuples(st.floats(0, 100), st.floats(0, 100)), max_size=25),
        st.floats(5, 30),
    )
    @settings(max_examples=40, deadline=None)
    def test_area_monotone_in_threshold(self, positions, l):
        areas = [
            refine_cell(positions, CELL, l, float(k)).area() for k in (1, 2, 3)
        ]
        assert areas[0] >= areas[1] >= areas[2]
