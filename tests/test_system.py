"""Integration tests for the PDRServer façade (every method, end to end)."""

from __future__ import annotations

import numpy as np
import pytest

from repro import PDRServer, SystemConfig
from repro.core.errors import InvalidParameterError
from repro.core.geometry import Rect
from tests.conftest import populate_clustered, small_system_config


class TestConfigValidation:
    def test_defaults_consistent(self):
        cfg = SystemConfig()
        assert cfg.horizon == 120
        assert cfg.histogram_cell_edge <= cfg.l / 2

    def test_filter_precondition_enforced(self):
        with pytest.raises(InvalidParameterError):
            SystemConfig(l=5.0, histogram_cells=100)  # cell edge 10 > l/2

    def test_invalid_windows(self):
        with pytest.raises(InvalidParameterError):
            SystemConfig(max_update_interval=0)
        with pytest.raises(InvalidParameterError):
            SystemConfig(prediction_window=-1)


class TestQueryConstruction:
    def test_requires_exactly_one_threshold(self, small_server):
        with pytest.raises(InvalidParameterError):
            small_server.make_query(qt=0)
        with pytest.raises(InvalidParameterError):
            small_server.make_query(qt=0, rho=0.1, varrho=2.0)

    def test_varrho_uses_live_count(self, small_server):
        populate_clustered(small_server, 100)
        q = small_server.make_query(qt=0, varrho=2.0)
        expected = 2.0 * 100 / small_server.config.domain.area
        assert q.rho == pytest.approx(expected)

    def test_l_defaults_to_config(self, small_server):
        q = small_server.make_query(qt=0, rho=0.1)
        assert q.l == small_server.config.l

    def test_unknown_method_rejected(self, populated_server):
        with pytest.raises(InvalidParameterError):
            populated_server.query("nonsense", qt=0, rho=0.1)


class TestEndToEndMethods:
    def test_fr_equals_bruteforce(self, populated_server):
        for qt in (0, 3, 6):
            exact = populated_server.query("fr", qt=qt, varrho=3.0)
            oracle = populated_server.query("bruteforce", qt=qt, varrho=3.0)
            assert exact.regions.symmetric_difference_area(
                oracle.regions
            ) == pytest.approx(0.0, abs=1e-6)

    def test_pa_close_to_exact(self, populated_server):
        exact = populated_server.query("fr", qt=0, varrho=3.0)
        approx = populated_server.query("pa", qt=0, varrho=3.0)
        inter = exact.regions.intersection_area(approx.regions)
        union = exact.area() + approx.area() - inter
        assert inter / union > 0.5  # generous: tiny world, spiky surface

    def test_dh_optimistic_superset(self, populated_server):
        """Optimistic DH has no false negatives (Section 7.2)."""
        exact = populated_server.query("fr", qt=0, varrho=3.0)
        opt = populated_server.query("dh-optimistic", qt=0, varrho=3.0)
        missed = exact.regions.difference_area(opt.regions)
        assert missed == pytest.approx(0.0, abs=1e-6)

    def test_dh_pessimistic_subset(self, populated_server):
        """Pessimistic DH has no false positives (Section 7.2)."""
        exact = populated_server.query("fr", qt=0, varrho=3.0)
        pess = populated_server.query("dh-pessimistic", qt=0, varrho=3.0)
        spurious = pess.regions.difference_area(exact.regions)
        assert spurious == pytest.approx(0.0, abs=1e-6)

    def test_dense_cell_and_edq_run(self, populated_server):
        for method in ("dense-cell", "edq"):
            result = populated_server.query(method, qt=0, varrho=3.0)
            assert result.stats.method in ("dense-cell", "edq")

    def test_interval_query_is_union_of_snapshots(self, populated_server):
        combined = populated_server.query_interval("fr", qt1=0, qt2=2, varrho=3.0)
        for qt in (0, 1, 2):
            snap = populated_server.query("fr", qt=qt, varrho=3.0)
            missed = snap.regions.difference_area(combined.regions)
            assert missed == pytest.approx(0.0, abs=1e-6)

    def test_optimized_interval_fr_matches_union(self, populated_server):
        naive = populated_server.query_interval("fr", qt1=0, qt2=3, varrho=3.0)
        fast = populated_server.query_interval(
            "fr-optimized", qt1=0, qt2=3, varrho=3.0
        )
        assert fast.regions.symmetric_difference_area(
            naive.regions
        ) == pytest.approx(0.0, abs=1e-6)
        assert fast.stats.method == "fr-interval-optimized"

    def test_interval_stats_merged(self, populated_server):
        combined = populated_server.query_interval("pa", qt1=0, qt2=2, varrho=3.0)
        assert combined.stats.method == "pa-interval"
        single = populated_server.query("pa", qt=0, varrho=3.0)
        assert combined.stats.bnb_nodes >= single.stats.bnb_nodes


class TestUpdateFlow:
    def test_report_reaches_all_structures(self, small_server):
        small_server.report(0, 50.0, 50.0, 0.0, 0.0)
        assert small_server.object_count() == 1
        assert small_server.histogram.total_at(0) == 1
        assert len(small_server.tree) == 1
        assert small_server.pa.surface_at(0).density_at(50.0, 50.0) > 0

    def test_advance_moves_all_windows(self, small_server):
        small_server.report(0, 50.0, 50.0, 0.0, 0.0)
        small_server.advance_to(4)
        assert small_server.histogram.window[0] == 4
        assert small_server.pa.window[0] == 4
        assert small_server.tnow == 4

    def test_update_timers_accumulate(self, small_server):
        populate_clustered(small_server, 40)
        assert small_server.dh_timer.updates == 40
        assert small_server.pa_timer.updates == 40
        assert small_server.pa_timer.total_seconds > 0

    def test_rereport_after_advance_consistent(self, small_server):
        small_server.report(0, 10.0, 10.0, 1.0, 0.0)
        small_server.advance_to(3)
        small_server.report(0, 13.0, 10.0, 1.0, 0.0)
        # All structures agree the object exists exactly once at qt=5.
        assert small_server.histogram.total_at(5) == 1
        hits = small_server.tree.range_query(Rect(0, 0, 100, 100), 5)
        assert len(hits) == 1

    def test_memory_report_keys(self, small_server):
        report = small_server.memory_report()
        assert set(report) == {"density_histogram", "polynomials", "buffer_pages"}
        assert report["density_histogram"] > 0


class TestQueryWindowErrors:
    def test_query_beyond_horizon_fails(self, populated_server):
        from repro.core.errors import HorizonError

        horizon = populated_server.config.horizon
        with pytest.raises(HorizonError):
            populated_server.query("pa", qt=horizon + 1, varrho=2.0)

    def test_fr_query_beyond_horizon_fails(self, populated_server):
        from repro.core.errors import HorizonError

        horizon = populated_server.config.horizon
        with pytest.raises(HorizonError):
            populated_server.query("fr", qt=horizon + 1, varrho=2.0)
