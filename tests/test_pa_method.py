"""Tests for the PA method: on-line maintenance and query evaluation."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.errors import HorizonError, InvalidParameterError
from repro.core.geometry import Rect
from repro.core.query import SnapshotPDRQuery
from repro.methods.pa import PAMethod
from repro.motion.table import ObjectTable

DOMAIN = Rect(0.0, 0.0, 100.0, 100.0)


def make_pa(l=10.0, horizon=5, g=4, k=4, tnow=0):
    return PAMethod(DOMAIN, l=l, horizon=horizon, g=g, k=k, md=128, tnow=tnow)


def rebuilt_surface(pa_template: PAMethod, table: ObjectTable, qt: int):
    """Reference surface: rebuild from scratch from the live objects."""
    from repro.chebyshev.grid import ChebSurface

    spec = pa_template.spec
    surface = ChebSurface(spec, spec.zero_coefficients())
    for motion in table.motions():
        # Only motions whose insert covered qt contribute, and only while
        # the object is inside the domain (the shared density convention).
        if motion.t_ref <= qt <= motion.t_ref + pa_template.horizon:
            x, y = motion.position_at(qt)
            if DOMAIN.contains_point(x, y):
                surface.add_object(x, y, pa_template.l)
    return surface


class TestMaintenance:
    def test_insert_increases_density_near_object(self):
        pa = make_pa()
        table = ObjectTable()
        table.add_listener(pa)
        table.report(0, 50.0, 50.0, 0.0, 0.0)
        surface = pa.surface_at(0)
        assert surface.density_at(50.0, 50.0) > 0.0

    def test_delete_cancels_insert_exactly(self):
        pa = make_pa()
        table = ObjectTable()
        table.add_listener(pa)
        before = pa._coeffs.copy()
        table.report(0, 37.0, 21.0, 1.0, -0.5)
        table.retire(0)
        assert np.allclose(pa._coeffs, before, atol=1e-12)

    @given(st.integers(1, 12), st.integers(0, 10_000), st.integers(0, 5))
    @settings(max_examples=20, deadline=None)
    def test_incremental_equals_rebuild(self, n, seed, qt):
        """Incremental coefficient maintenance == rebuild from live objects."""
        gen = np.random.default_rng(seed)
        pa = make_pa()
        table = ObjectTable()
        table.add_listener(pa)
        for oid in range(n):
            table.report(
                oid,
                float(gen.uniform(5, 95)),
                float(gen.uniform(5, 95)),
                float(gen.uniform(-2, 2)),
                float(gen.uniform(-2, 2)),
            )
            if gen.random() < 0.3:
                table.report(
                    oid,
                    float(gen.uniform(5, 95)),
                    float(gen.uniform(5, 95)),
                    0.0,
                    0.0,
                )
        reference = rebuilt_surface(pa, table, qt)
        live = pa.surface_at(qt)
        assert np.allclose(live.coeffs, reference.coeffs, atol=1e-9)

    def test_advance_then_rereport_keeps_window_exact(self):
        pa = make_pa(horizon=5)
        table = ObjectTable()
        table.add_listener(pa)
        table.report(0, 50.0, 50.0, 1.0, 0.0)
        table.advance_to(3)
        table.report(0, 53.0, 50.0, 1.0, 0.0)
        for qt in range(3, 9):
            reference = rebuilt_surface(pa, table, qt)
            assert np.allclose(pa.surface_at(qt).coeffs, reference.coeffs, atol=1e-9)

    def test_window_errors(self):
        pa = make_pa(horizon=5, tnow=2)
        with pytest.raises(HorizonError):
            pa.surface_at(1)
        with pytest.raises(HorizonError):
            pa.surface_at(8)

    def test_advance_past_window_resets(self):
        pa = make_pa(horizon=5)
        table = ObjectTable()
        table.add_listener(pa)
        table.report(0, 50.0, 50.0, 0.0, 0.0)
        table.advance_to(30)
        assert np.allclose(pa.surface_at(32).coeffs, 0.0)

    def test_object_outside_domain_contributes_nothing(self):
        pa = make_pa()
        table = ObjectTable()
        table.add_listener(pa)
        table.report(0, 95.0, 50.0, 20.0, 0.0)  # far outside from t=1 on
        assert np.allclose(pa.surface_at(3).coeffs, 0.0, atol=1e-12)

    def test_memory_accounting(self):
        pa = make_pa(g=4, k=4, horizon=5)
        assert pa.memory_bytes() == 6 * 16 * 15 * 8  # (k+1)(k+2)/2 = 15

    def test_validation(self):
        with pytest.raises(InvalidParameterError):
            PAMethod(DOMAIN, l=0.0, horizon=5)
        with pytest.raises(InvalidParameterError):
            PAMethod(DOMAIN, l=5.0, horizon=-1)
        pa = make_pa()
        with pytest.raises(InvalidParameterError):
            pa.on_advance(-1)


class TestQuery:
    def test_l_mismatch_rejected(self):
        pa = make_pa(l=10.0)
        with pytest.raises(InvalidParameterError):
            pa.query(SnapshotPDRQuery(rho=0.1, l=20.0, qt=0))

    def test_finds_cluster(self):
        pa = make_pa(g=5, k=5)
        table = ObjectTable()
        table.add_listener(pa)
        gen = np.random.default_rng(1)
        for oid in range(30):
            x, y = gen.normal([50.0, 50.0], 2.5, size=2)
            table.report(oid, float(x), float(y), 0.0, 0.0)
        # Cluster density ~ 30 objects / 100 area; threshold 0.05.
        result = pa.query(SnapshotPDRQuery(rho=0.05, l=10.0, qt=0))
        assert result.regions.contains_point(50.0, 50.0)
        assert not result.regions.contains_point(10.0, 90.0)
        assert result.stats.method == "pa"
        assert result.stats.bnb_nodes > 0

    def test_empty_world_empty_answer(self):
        pa = make_pa()
        result = pa.query(SnapshotPDRQuery(rho=0.01, l=10.0, qt=0))
        assert result.regions.is_empty()

    def test_query_tracks_moving_cluster(self):
        pa = make_pa(g=5, k=5, horizon=5)
        table = ObjectTable()
        table.add_listener(pa)
        gen = np.random.default_rng(2)
        for oid in range(30):
            x, y = gen.normal([30.0, 50.0], 2.0, size=2)
            table.report(oid, float(x), float(y), 8.0, 0.0)  # moving right
        q0 = pa.query(SnapshotPDRQuery(rho=0.05, l=10.0, qt=0))
        q5 = pa.query(SnapshotPDRQuery(rho=0.05, l=10.0, qt=5))
        assert q0.regions.contains_point(30.0, 50.0)
        assert not q0.regions.contains_point(70.0, 50.0)
        assert q5.regions.contains_point(70.0, 50.0)
        assert not q5.regions.contains_point(30.0, 50.0)

    def test_stats_extra_fields(self):
        pa = make_pa()
        result = pa.query(SnapshotPDRQuery(rho=0.01, l=10.0, qt=0))
        assert "bnb_pruned" in result.stats.extra
