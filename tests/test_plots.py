"""Tests for the ASCII chart renderer."""

from __future__ import annotations

import pytest

from repro.core.errors import InvalidParameterError
from repro.experiments.plots import ascii_chart


class TestAsciiChart:
    def test_basic_render(self):
        chart = ascii_chart([1, 2, 3], {"a": [1.0, 2.0, 3.0]}, width=20, height=6)
        lines = chart.splitlines()
        assert any("*" in line for line in lines)
        assert any("+" + "-" * 20 in line for line in lines)
        assert "a" in lines[-1]

    def test_title_and_labels(self):
        chart = ascii_chart(
            [0, 1], {"s": [0.0, 1.0]}, title="T", x_label="x", width=12, height=4
        )
        assert chart.splitlines()[0] == "T"
        assert "[x]" in chart

    def test_two_series_get_distinct_markers(self):
        chart = ascii_chart([0, 1, 2], {"a": [0, 1, 2], "b": [2, 1, 0]},
                            width=20, height=6)
        assert "*" in chart and "o" in chart

    def test_log_scale_spans_orders(self):
        chart = ascii_chart(
            [1, 2], {"a": [0.01, 1000.0]}, log_y=True, width=20, height=8
        )
        assert "(log y)" in chart
        assert "1.0e+03" in chart or "1000" in chart

    def test_constant_series_renders(self):
        chart = ascii_chart([1, 2, 3], {"flat": [5.0, 5.0, 5.0]}, width=20, height=5)
        assert "*" in chart

    def test_validation(self):
        with pytest.raises(InvalidParameterError):
            ascii_chart([1, 2], {})
        with pytest.raises(InvalidParameterError):
            ascii_chart([1], {"a": [1.0]})
        with pytest.raises(InvalidParameterError):
            ascii_chart([1, 2], {"a": [1.0]})
        with pytest.raises(InvalidParameterError):
            ascii_chart([1, 2], {"a": [1.0, 2.0]}, width=5)

    def test_points_land_at_extremes(self):
        chart = ascii_chart([0, 10], {"a": [0.0, 100.0]}, width=30, height=10)
        lines = [ln for ln in chart.splitlines() if "|" in ln]
        body = [ln.split("|", 1)[1] for ln in lines]
        # Max value in the top row, min value in the bottom row.
        assert "*" in body[0]
        assert "*" in body[-1]
