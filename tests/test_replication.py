"""Replication: WAL shipping, staleness routing, failover, fencing.

The partition/failover acceptance matrix of the replicated-serving work:
a deterministic workload is driven through a :class:`ReplicationGroup`
while the transport misbehaves in every supported way (lag, drop,
reorder, partition, injected send faults) and the primary is killed at
every named fault site of the write path.  After every scenario the
promoted/caught-up state must be *bit-exact* with an uncrashed reference
(PA coefficients and histogram counters compared array-for-array — the
same guarantee PR 1's crash recovery gives), no acknowledged write may
be lost, and the old primary must be fenced out.
"""

from __future__ import annotations

import shutil
import tempfile

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from tests.conftest import small_system_config
from tests.test_recovery import (
    CRASH_SITES,
    N_OBJECTS,
    OPS,
    apply_op,
    assert_states_match,
    durable_config,
    reference,  # noqa: F401  (module-scoped fixture re-used here)
)
from repro import PDRServer
from repro.core.errors import (
    FailoverError,
    InvalidParameterError,
    NotPrimaryError,
    StalenessExceededError,
)
from repro.reliability import (
    FaultInjector,
    InjectedCrashError,
    ReplicationConfig,
    ReplicationGroup,
    ShippedRecord,
)

GROUP_CRASH_SITES = CRASH_SITES + ("replication.send",)


def make_group(tmp_path, n_replicas=2, faults=None, staleness=0, interval=25, lease=3.0):
    faults = faults or FaultInjector()
    rc = durable_config(tmp_path, faults=faults, interval=interval)
    primary = PDRServer(small_system_config(), expected_objects=N_OBJECTS, reliability=rc)
    group = ReplicationGroup(
        primary,
        n_replicas=n_replicas,
        config=ReplicationConfig(staleness_bound=staleness, lease_timeout=lease),
    )
    return group, faults


def apply_group_op(group: ReplicationGroup, op) -> None:
    if op[0] == "advance":
        group.advance_to(op[1])
    elif op[0] == "retire":
        assert group.retire(op[1]) is True
    else:
        assert group.report(*op[1:]) is not None


def assert_replica_bit_exact(replica, server) -> None:
    assert np.array_equal(
        replica.server.pa.state_arrays()["coeffs"], server.pa.state_arrays()["coeffs"]
    )
    assert np.array_equal(
        replica.server.histogram.state_arrays()["counts"],
        server.histogram.state_arrays()["counts"],
    )
    assert replica.server.audit() == []


class TestShipping:
    def test_replicas_track_primary_bit_exactly(self, tmp_path):
        group, _ = make_group(tmp_path)
        for op in OPS[:300]:
            apply_group_op(group, op)
        for replica in group.replicas:
            assert replica.lag(group.acked_lsn) == 0
            assert_replica_bit_exact(replica, group.primary)
        group.close()

    def test_lag_knob_delays_delivery(self, tmp_path):
        group, _ = make_group(tmp_path, n_replicas=1, staleness=0)
        replica = group.replicas[0]
        replica.link.lag_records = 10
        for op in OPS[:100]:
            apply_group_op(group, op)
        assert replica.lag(group.acked_lsn) == 10
        # a lagging replica is outside the staleness bound: the primary serves
        result = group.query("pa", qt=group.tnow, varrho=2.0)
        assert result.served_by == "primary"
        # within a looser bound the replica serves (slightly stale is fine)
        group.replication.staleness_bound = 50
        result = group.query("pa", qt=group.tnow, varrho=2.0)
        assert result.served_by == "replica-0"
        # releasing the lag converges to bit-exact
        replica.link.lag_records = 0
        group.pump()
        assert replica.lag(group.acked_lsn) == 0
        assert_replica_bit_exact(replica, group.primary)
        group.close()

    def test_partition_heals_to_zero_divergence(self, tmp_path):
        group, _ = make_group(tmp_path, n_replicas=2)
        sick = group.replicas[0]
        for op in OPS[:60]:
            apply_group_op(group, op)
        sick.link.partitioned = True
        for op in OPS[60:200]:
            apply_group_op(group, op)
        assert sick.lag(group.acked_lsn) > 0
        assert group.replicas[1].lag(group.acked_lsn) == 0
        sick.link.partitioned = False
        group.catch_up_replicas()
        assert sick.lag(group.acked_lsn) == 0
        assert_replica_bit_exact(sick, group.primary)
        group.close()

    def test_dropped_records_heal_from_the_wal(self, tmp_path):
        group, _ = make_group(tmp_path, n_replicas=1)
        replica = group.replicas[0]
        for op in OPS[:50]:
            apply_group_op(group, op)
        replica.link.drop_next(5)
        for op in OPS[50:120]:
            apply_group_op(group, op)
        assert replica.link.dropped == 5
        assert replica.stalled  # a gap: buffered records cannot apply
        group.catch_up_replicas()
        assert replica.lag(group.acked_lsn) == 0
        assert not replica.stalled
        assert_replica_bit_exact(replica, group.primary)
        group.close()

    def test_injected_send_faults_behave_like_drops(self, tmp_path):
        faults = FaultInjector()
        faults.inject_error("replication.send", times=4, after=50)
        group, _ = make_group(tmp_path, n_replicas=1, faults=faults)
        replica = group.replicas[0]
        for op in OPS[:100]:
            apply_group_op(group, op)
        assert replica.link.dropped == 4
        group.catch_up_replicas()
        assert_replica_bit_exact(replica, group.primary)
        group.close()

    def test_reordered_delivery_applies_in_lsn_order(self, tmp_path):
        group, _ = make_group(tmp_path, n_replicas=1)
        replica = group.replicas[0]
        replica.link.partitioned = True  # let a batch build up
        for op in OPS[:30]:
            apply_group_op(group, op)
        replica.link.partitioned = False
        replica.link.reorder_next(replica.link.queued)
        group.pump()
        assert replica.lag(group.acked_lsn) == 0
        assert_replica_bit_exact(replica, group.primary)
        group.close()

    def test_late_joiner_bootstraps_from_checkpoint_image(self, tmp_path):
        group, _ = make_group(tmp_path)
        for op in OPS:
            apply_group_op(group, op)
        # the full workload checkpointed and pruned: lsn 1 is gone, so the
        # joiner *must* come up through the image + tail path
        joiner = group.add_replica("late")
        assert joiner.lag(group.acked_lsn) == 0
        assert_replica_bit_exact(joiner, group.primary)
        group.close()

    def test_no_backend_within_staleness_raises(self, tmp_path):
        group, _ = make_group(tmp_path, n_replicas=1, staleness=0)
        replica = group.replicas[0]
        replica.link.partitioned = True
        for op in OPS[:40]:
            apply_group_op(group, op)
        group.mark_primary_dead()
        with pytest.raises(StalenessExceededError):
            group.query("pa", qt=group.tnow, varrho=2.0)
        group.close()


class TestFailover:
    @pytest.mark.parametrize("site", GROUP_CRASH_SITES)
    def test_primary_kill_matrix_loses_no_acknowledged_write(self, site, tmp_path, reference):  # noqa: F811
        faults = FaultInjector()
        after = {
            "checkpoint.write": 6,
            "checkpoint.manifest": 6,
            "advance.apply": 120,
            "replication.send": 900,  # two sends per record
        }
        faults.inject_crash(site, after=after.get(site, 450))
        group, _ = make_group(tmp_path, n_replicas=2, faults=faults)
        acked = 0
        crashed = False
        for op in OPS:
            try:
                apply_group_op(group, op)
                acked += 1
            except InjectedCrashError:
                crashed = True
                break
        assert crashed, f"site {site} never crashed the workload"

        durable = group.acked_lsn
        assert durable >= acked  # every acknowledged write is in the WAL
        faults.clock.sleep(group.replication.lease_timeout + 1)
        promoted = group.maybe_failover()
        assert promoted is not None
        # the promoted replica replayed the durable WAL to its end, then
        # logged the epoch-bump record
        assert promoted.wal_lsn == durable + 1
        assert promoted.role == "primary"
        assert promoted.audit() == []
        assert group.epoch == 2

        # the group keeps serving: finish the workload through the new
        # primary and match the uncrashed reference bit-for-bit
        for op in OPS[durable:]:
            apply_group_op(group, op)
        assert_states_match(group.primary, reference)
        # a crash mid-send can leave a gap on a surviving replica's link;
        # the periodic healing pass closes it from the durable WAL
        group.catch_up_replicas()
        for replica in group.replicas:
            assert replica.lag(group.acked_lsn) == 0
            assert_replica_bit_exact(replica, group.primary)
        group.close()

    def test_lease_expiry_triggers_failover_without_explicit_kill(self, tmp_path):
        group, faults = make_group(tmp_path, lease=2.0)
        for op in OPS[:100]:
            apply_group_op(group, op)
        assert group.maybe_failover() is None  # lease fresh: no failover
        faults.clock.sleep(2.5)
        promoted = group.maybe_failover()
        assert promoted is not None and promoted.role == "primary"
        assert group.primary_alive
        group.close()

    def test_failover_promotes_most_caught_up_replica(self, tmp_path):
        group, faults = make_group(tmp_path, n_replicas=2)
        group.replicas[0].link.partitioned = True
        for op in OPS[:150]:
            apply_group_op(group, op)
        assert group.replicas[0].applied_lsn < group.replicas[1].applied_lsn
        faults.clock.sleep(10)
        group.maybe_failover()
        assert group.primary_name == "replica-1"
        group.close()

    def test_failed_over_group_survives_a_second_failover(self, tmp_path):
        group, faults = make_group(tmp_path, n_replicas=2)
        for op in OPS[:100]:
            apply_group_op(group, op)
        faults.clock.sleep(10)
        group.failover()
        for op in OPS[group.acked_lsn - 1:200]:  # -1: the epoch record
            apply_group_op(group, op)
        faults.clock.sleep(10)
        group.failover()
        assert group.epoch == 3
        assert group.primary.audit() == []
        assert not group.replicas  # both replicas promoted away
        group.close()

    def test_failover_with_no_promotable_replica_raises(self, tmp_path):
        group, faults = make_group(tmp_path, n_replicas=0)
        for op in OPS[:40]:
            apply_group_op(group, op)
        faults.clock.sleep(10)
        with pytest.raises(FailoverError):
            group.failover()

    def test_requires_durable_primary(self):
        primary = PDRServer(small_system_config(), expected_objects=N_OBJECTS)
        with pytest.raises(InvalidParameterError, match="durable"):
            ReplicationGroup(primary, n_replicas=1)


class TestFencing:
    def test_old_primary_writes_raise_after_failover(self, tmp_path):
        group, faults = make_group(tmp_path)
        for op in OPS[:100]:
            apply_group_op(group, op)
        old = group.primary
        faults.clock.sleep(10)
        group.failover()
        assert old.role == "fenced"
        with pytest.raises(NotPrimaryError):
            old.report(0, 50.0, 50.0, 0.0, 0.0)
        with pytest.raises(NotPrimaryError):
            old.retire(0)
        with pytest.raises(NotPrimaryError):
            old.advance_to(old.tnow + 1)
        group.close()

    def test_replicas_reject_stale_epoch_records(self, tmp_path):
        group, faults = make_group(tmp_path, n_replicas=2)
        for op in OPS[:100]:
            apply_group_op(group, op)
        faults.clock.sleep(10)
        group.failover()
        survivor = group.replicas[0]
        before = np.array(survivor.server.pa.state_arrays()["coeffs"], copy=True)
        lsn = survivor.applied_lsn + 1
        # a resurrected epoch-1 primary tries to ship a forged record
        forged = ShippedRecord(
            epoch=1,
            record={"op": "report", "lsn": lsn, "t": survivor.server.tnow,
                    "oid": 0, "x": 50.0, "y": 50.0, "vx": 0.0, "vy": 0.0},
        )
        survivor.offer(forged)
        survivor.drain()
        assert survivor.fenced_rejects == 1
        assert survivor.applied_lsn == lsn - 1  # nothing applied
        assert np.array_equal(
            survivor.server.pa.state_arrays()["coeffs"], before
        )
        group.close()

    def test_replica_servers_refuse_direct_writes(self, tmp_path):
        group, _ = make_group(tmp_path, n_replicas=1)
        with pytest.raises(NotPrimaryError):
            group.replicas[0].server.report(0, 50.0, 50.0, 0.0, 0.0)
        group.close()

    def test_epoch_survives_recovery_of_the_state_dir(self, tmp_path):
        group, faults = make_group(tmp_path)
        for op in OPS[:100]:
            apply_group_op(group, op)
        faults.clock.sleep(10)
        group.failover()
        state_dir = group.state_dir
        group.primary.close()
        recovered = PDRServer.recover(state_dir)
        assert recovered.epoch == 2  # the epoch record replayed
        recovered.close()


# ----------------------------------------------------------------------
# property: arbitrary WAL prefix + catch-up always converges
# ----------------------------------------------------------------------
_op_strategy = st.lists(
    st.tuples(
        st.sampled_from(["report", "report", "report", "retire", "advance"]),
        st.integers(min_value=0, max_value=7),
        st.floats(min_value=5.0, max_value=95.0),
        st.floats(min_value=5.0, max_value=95.0),
        st.floats(min_value=-1.0, max_value=1.0),
        st.floats(min_value=-1.0, max_value=1.0),
    ),
    min_size=5,
    max_size=40,
)


@given(raw_ops=_op_strategy, cut=st.integers(min_value=0, max_value=60))
@settings(max_examples=20, deadline=None)
def test_replica_prefix_then_catchup_converges(raw_ops, cut):
    """Satellite: a replica that saw an arbitrary WAL prefix, then catches
    up, reaches the primary's audit-clean state for random interleavings."""
    tmp = tempfile.mkdtemp(prefix="repro-replprop-")
    try:
        faults = FaultInjector()
        rc = durable_config(tmp, faults=faults, interval=3)
        primary = PDRServer(small_system_config(), expected_objects=16, reliability=rc)
        group = ReplicationGroup(
            primary, n_replicas=1, config=ReplicationConfig(staleness_bound=0)
        )
        replica = group.replicas[0]
        live = set()
        tnow = 0
        for i, (kind, oid, x, y, vx, vy) in enumerate(raw_ops):
            if i == cut:
                replica.link.partitioned = True  # replica saw only a prefix
            if kind == "advance":
                tnow += 1
                group.advance_to(tnow)
            elif kind == "retire":
                if oid in live:
                    group.retire(oid)
                    live.discard(oid)
            else:
                group.report(oid, x, y, vx, vy)
                live.add(oid)
        replica.catch_up(group.state_dir)
        replica.link.partitioned = False
        group.pump()  # stale queued records must be ignored, not re-applied
        assert replica.applied_lsn == group.acked_lsn
        assert_replica_bit_exact(replica, group.primary)
        assert replica.server.tnow == group.primary.tnow
        group.close()
    finally:
        shutil.rmtree(tmp, ignore_errors=True)


class TestStatus:
    def test_status_and_reliability_report_shapes(self, tmp_path):
        group, _ = make_group(tmp_path, n_replicas=2)
        for op in OPS[:60]:
            apply_group_op(group, op)
        status = group.status()
        assert status["epoch"] == 1
        assert status["primary"]["alive"] is True
        assert len(status["replicas"]) == 2
        assert all(r["lag"] == 0 for r in status["replicas"])
        report = group.reliability_report()
        assert report["replication"]["epoch"] == 1
        assert report["admission"] is None  # no admission configured
        assert report["wal_lsn"] == group.acked_lsn
        group.close()
