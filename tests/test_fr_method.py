"""Tests for the exact FR method: filter step plus refinement.

The central property: FR's answer equals the brute-force full-plane sweep
exactly, region for region, under random workloads.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.bruteforce import bruteforce_from_motions
from repro.core.errors import InvalidParameterError
from repro.core.geometry import Rect
from repro.core.query import SnapshotPDRQuery
from repro.histogram.density_histogram import DensityHistogram
from repro.histogram.filter import filter_query, neighborhood_radii
from repro.index.tree import TPRTree
from repro.methods.fr import FRMethod
from repro.motion.table import ObjectTable
from repro.storage.buffer import BufferPool

DOMAIN = Rect(0.0, 0.0, 100.0, 100.0)
HORIZON = 6


def build_world(n, seed, clustered=True, buffer_pages=8):
    table = ObjectTable()
    hist = DensityHistogram(DOMAIN, m=20, horizon=HORIZON)  # cell edge 5
    pool = BufferPool(capacity_pages=buffer_pages)
    tree = TPRTree(horizon=HORIZON, buffer_pool=pool, fanout_override=8)
    table.add_listener(hist)
    table.add_listener(tree)
    gen = np.random.default_rng(seed)
    for oid in range(n):
        if clustered and oid % 2 == 0:
            x, y = gen.normal([40.0, 60.0], 4.0, size=2)
            x, y = float(np.clip(x, 1, 99)), float(np.clip(y, 1, 99))
        else:
            x, y = float(gen.uniform(1, 99)), float(gen.uniform(1, 99))
        table.report(oid, x, y, float(gen.uniform(-2, 2)), float(gen.uniform(-2, 2)))
    return table, hist, tree


class TestNeighborhoodRadii:
    def test_paper_example(self):
        # l = 10, cell edge 2: l/(2 lc) = 2.5 -> eta_l = 2, eta_h = 3
        # (Figure 4's caption: eta_l = 2, eta_h = 3).
        assert neighborhood_radii(10.0, 2.0) == (2, 3)

    def test_exact_multiple(self):
        assert neighborhood_radii(10.0, 2.5) == (2, 2)

    def test_boundary_cell_edge_half_l(self):
        assert neighborhood_radii(10.0, 5.0) == (1, 1)

    def test_cell_too_coarse_raises(self):
        with pytest.raises(InvalidParameterError):
            neighborhood_radii(10.0, 6.0)


class TestFilterStep:
    def test_classification_partitions_cells(self):
        _table, hist, _tree = build_world(60, seed=0)
        query = SnapshotPDRQuery(rho=0.05, l=10.0, qt=0)
        result = filter_query(hist, query)
        total = result.accepted_count + result.rejected_count + result.candidate_count
        assert total == hist.m * hist.m
        assert not (result.accepted & result.rejected).any()
        assert not (result.accepted & result.candidate).any()

    def test_accepted_cells_truly_dense(self):
        table, hist, _tree = build_world(80, seed=1)
        query = SnapshotPDRQuery(rho=0.04, l=10.0, qt=0)
        result = filter_query(hist, query)
        positions = [(x, y) for (_o, x, y) in table.positions_at(0)]
        from repro.core.geometry import point_in_square

        for (i, j) in result.accepted_cells():
            cell = hist.cell_rect(i, j)
            # Probe the cell corners and centre: all must be dense.
            probes = [
                (cell.x1, cell.y1),
                (cell.center.x, cell.center.y),
                (cell.x2 - 1e-6, cell.y2 - 1e-6),
            ]
            for px, py in probes:
                count = sum(
                    1 for ox, oy in positions if point_in_square(ox, oy, px, py, 10.0)
                )
                assert count >= query.min_count - 1e-9

    def test_rejected_cells_truly_not_dense(self):
        table, hist, _tree = build_world(80, seed=2)
        query = SnapshotPDRQuery(rho=0.04, l=10.0, qt=0)
        result = filter_query(hist, query)
        positions = [(x, y) for (_o, x, y) in table.positions_at(0)]
        from repro.core.geometry import point_in_square

        gen = np.random.default_rng(3)
        rejected = result.rejected
        for (i, j) in zip(*rejected.nonzero()):
            cell = hist.cell_rect(int(i), int(j))
            for _ in range(3):
                px = float(gen.uniform(cell.x1, cell.x2))
                py = float(gen.uniform(cell.y1, cell.y2))
                count = sum(
                    1 for ox, oy in positions if point_in_square(ox, oy, px, py, 10.0)
                )
                assert count < query.min_count - 1e-9

    def test_zero_threshold_accepts_everything(self):
        _table, hist, _tree = build_world(10, seed=4)
        result = filter_query(hist, SnapshotPDRQuery(rho=0.0, l=10.0, qt=0))
        assert result.accepted_count == hist.m * hist.m


class TestFRMatchesBruteForce:
    @given(
        st.integers(5, 60),
        st.integers(0, 10_000),
        st.floats(0.01, 0.08),
        st.integers(0, HORIZON),
    )
    @settings(max_examples=25, deadline=None)
    def test_exactness(self, n, seed, rho, qt):
        table, hist, tree = build_world(n, seed=seed)
        fr = FRMethod(hist, tree)
        query = SnapshotPDRQuery(rho=rho, l=10.0, qt=qt)
        got = fr.query(query)
        want = bruteforce_from_motions(table.motions(), DOMAIN, query)
        assert got.regions.symmetric_difference_area(want.regions) == pytest.approx(
            0.0, abs=1e-6
        )

    def test_exactness_with_larger_l(self):
        table, hist, tree = build_world(50, seed=9)
        fr = FRMethod(hist, tree)
        query = SnapshotPDRQuery(rho=0.01, l=30.0, qt=2)
        got = fr.query(query)
        want = bruteforce_from_motions(table.motions(), DOMAIN, query)
        assert got.regions.symmetric_difference_area(want.regions) == pytest.approx(
            0.0, abs=1e-6
        )

    def test_empty_world(self):
        table = ObjectTable()
        hist = DensityHistogram(DOMAIN, m=20, horizon=HORIZON)
        tree = TPRTree(horizon=HORIZON, fanout_override=8)
        table.add_listener(hist)
        table.add_listener(tree)
        fr = FRMethod(hist, tree)
        result = fr.query(SnapshotPDRQuery(rho=0.01, l=10.0, qt=0))
        assert result.regions.is_empty()


class TestFRBatchedRefinement:
    @given(st.integers(10, 70), st.integers(0, 10_000), st.floats(0.02, 0.07))
    @settings(max_examples=15, deadline=None)
    def test_batched_answer_identical(self, n, seed, rho):
        """Coalescing candidate cells never changes the exact answer."""
        table, hist, tree = build_world(n, seed=seed)
        query = SnapshotPDRQuery(rho=rho, l=10.0, qt=2)
        per_cell = FRMethod(hist, tree, batch_candidates=False).query(query)
        batched = FRMethod(hist, tree, batch_candidates=True).query(query)
        assert per_cell.regions.symmetric_difference_area(
            batched.regions
        ) == pytest.approx(0.0, abs=1e-9)

    def test_batching_issues_fewer_range_queries(self):
        table, hist, tree = build_world(120, seed=3)
        query = SnapshotPDRQuery(rho=0.03, l=10.0, qt=0)
        filtered = filter_query(hist, query)
        fr = FRMethod(hist, tree, batch_candidates=True)
        strips = fr._candidate_rects(filtered)
        if filtered.candidate_count > 1:
            assert len(strips) < filtered.candidate_count
        area_cells = filtered.candidate_region().area()
        area_strips = sum(r.area for r in strips)
        assert area_strips == pytest.approx(area_cells)


class TestFRStats:
    def test_stats_populated(self):
        _table, hist, tree = build_world(80, seed=5)
        fr = FRMethod(hist, tree)
        result = fr.query(SnapshotPDRQuery(rho=0.03, l=10.0, qt=0))
        stats = result.stats
        assert stats.method == "fr"
        assert stats.accepted_cells + stats.rejected_cells + stats.candidate_cells == 400
        assert stats.cpu_seconds > 0.0
        if stats.candidate_cells:
            assert stats.io_count > 0
            assert stats.io_seconds == pytest.approx(stats.io_count * 0.01)

    def test_no_buffer_pool_means_no_io_charge(self):
        table = ObjectTable()
        hist = DensityHistogram(DOMAIN, m=20, horizon=HORIZON)
        tree = TPRTree(horizon=HORIZON, buffer_pool=None, fanout_override=8)
        table.add_listener(hist)
        table.add_listener(tree)
        gen = np.random.default_rng(0)
        for oid in range(40):
            table.report(oid, float(gen.uniform(1, 99)), float(gen.uniform(1, 99)),
                         0.0, 0.0)
        fr = FRMethod(hist, tree)
        result = fr.query(SnapshotPDRQuery(rho=0.02, l=10.0, qt=0))
        assert result.stats.io_count == 0
        assert result.stats.io_seconds == 0.0

    def test_requires_components(self):
        with pytest.raises(InvalidParameterError):
            FRMethod(None, None)
