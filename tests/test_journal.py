"""The unified ops journal: ring mode, rotation caps, merge, robustness.

The journal's contract is operational: every emit succeeds (ring-only
when unbound, never an exception when the disk goes away), its on-disk
footprint stays under ``max_segment_bytes * max_segments`` per process
(the disk-budget guarantee), and readers reconstruct a merged,
per-process-ordered timeline while skipping torn lines — the exact
artifact SIGKILL leaves behind.
"""

from __future__ import annotations

import glob
import json
import os

from repro.telemetry import TELEMETRY
from repro.telemetry.journal import Journal, read_journal


def test_unbound_journal_is_a_ring_and_never_touches_disk(tmp_path):
    journal = Journal(ring_capacity=4)
    seqs = [journal.emit("e", n=i) for i in range(10)]
    assert seqs == list(range(1, 11))  # per-process monotonic
    recent = journal.recent()
    assert [r["n"] for r in recent] == [6, 7, 8, 9]  # ring keeps newest
    assert journal.disk_bytes() == 0
    assert list(tmp_path.iterdir()) == []


def test_bound_journal_writes_records_read_journal_reads_them(tmp_path):
    directory = str(tmp_path / "journal")
    journal = Journal()
    journal.bind(directory, role="test")
    journal.update_context(epoch=3, generation=2)
    journal.emit("failover", new_epoch=4)
    journal.emit("shed", reason="rate", method="fr")
    journal.close()

    records = read_journal(directory)
    assert [r["event"] for r in records] == ["failover", "shed"]
    first = records[0]
    # the record envelope: seq/ts/perf/pid plus ambient context
    assert first["seq"] == 1
    assert first["pid"] == os.getpid()
    assert first["role"] == "test"
    assert first["epoch"] == 3 and first["generation"] == 2
    assert first["new_epoch"] == 4
    assert isinstance(first["ts"], float) and isinstance(first["perf"], float)


def test_event_fields_cannot_clobber_the_record_envelope(tmp_path):
    journal = Journal()
    journal.bind(str(tmp_path / "j"))
    journal.emit("supervise.exit", pid=99999, seq=-1, ts=0.0)
    journal.close()
    (record,) = read_journal(str(tmp_path / "j"))
    assert record["pid"] == os.getpid()          # emitter's, not the field
    assert record["event"] == "supervise.exit"
    assert record["seq"] == 1
    assert record["ts"] > 1.0                    # real wall clock kept
    assert record["subject_pid"] == 99999        # the field survives, renamed


def test_rotation_bounds_disk_usage_under_the_caps(tmp_path):
    directory = str(tmp_path / "journal")
    journal = Journal()
    journal.bind(directory, max_segment_bytes=2048, max_segments=3)
    for i in range(500):
        journal.emit("spin", i=i, pad="x" * 64)
    assert journal.rotations > 0
    own = glob.glob(os.path.join(directory, f"journal-{os.getpid()}-*.jsonl"))
    assert len(own) <= 3
    # worst case: max_segments full segments plus one record of overshoot
    assert journal.disk_bytes() <= 3 * 2048 + 1024
    # the newest records survived pruning
    events = read_journal(directory)
    assert events[-1]["i"] == 499
    journal.close()


def test_reader_merges_processes_and_skips_torn_lines(tmp_path):
    directory = tmp_path / "journal"
    journal = Journal()
    journal.bind(str(directory))
    journal.emit("mine")
    journal.close()
    # a "second process": hand-written segment with a torn final line
    other = directory / "journal-424242-0000.jsonl"
    other.write_text(
        json.dumps({"seq": 1, "ts": 0.5, "perf": 0.0, "pid": 424242,
                    "event": "theirs"}) + "\n"
        + '{"seq": 2, "ts": 99.0, "pid": 424242, "event": "torn'  # SIGKILL
    )
    records = read_journal(str(directory))
    assert [r["event"] for r in records] == ["theirs", "mine"]  # ts order
    assert read_journal(str(directory), event="mine")[0]["pid"] == os.getpid()
    assert read_journal(str(directory), pids=[424242])[0]["event"] == "theirs"
    assert read_journal(str(directory), since=1.0)[0]["event"] == "mine"
    assert len(read_journal(str(directory), limit=1)) == 1


def test_emit_inside_a_span_stamps_the_trace_id(tmp_path):
    journal = Journal()
    journal.bind(str(tmp_path / "j"))
    tracer = TELEMETRY.tracer
    with tracer.trace("query") as span:
        journal.emit("slow_query")
    journal.emit("outside")
    journal.close()
    inside, outside = read_journal(str(tmp_path / "j"))
    assert inside["trace_id"] == span.trace_id
    assert outside["trace_id"] is None


def test_poisoned_descriptor_degrades_to_ring_only(tmp_path):
    journal = Journal()
    journal.bind(str(tmp_path / "j"))
    journal.emit("before")
    journal._fh.close()  # poison: the next write raises ValueError
    assert journal.emit("during") == 2  # emit still succeeds
    assert journal.emit("after") == 3
    assert [r["event"] for r in journal.recent()] == [
        "before", "during", "after"
    ]
    # disk kept what made it before the poisoning
    assert [r["event"] for r in read_journal(str(tmp_path / "j"))] == ["before"]


def test_rebind_resumes_after_the_highest_existing_segment(tmp_path):
    directory = str(tmp_path / "j")
    journal = Journal()
    journal.bind(directory, max_segment_bytes=1024)
    for i in range(60):
        journal.emit("first", pad="y" * 48)
    journal.close()
    before = read_journal(directory)
    journal2 = Journal()
    journal2.bind(directory, max_segment_bytes=1024)
    journal2.emit("second-life")
    journal2.close()
    after = read_journal(directory)
    assert len(after) == len(before) + 1  # no history truncated
    assert after[-1]["event"] == "second-life"
