"""Unit tests for repro.core.geometry."""

from __future__ import annotations

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.errors import GeometryError
from repro.core.geometry import (
    Point,
    Rect,
    merge_touching_intervals,
    object_influence_rect,
    point_in_square,
    square_bounds,
)

coords = st.floats(-1000, 1000, allow_nan=False, allow_infinity=False)


class TestPoint:
    def test_translated(self):
        assert Point(1.0, 2.0).translated(3.0, -1.0) == Point(4.0, 1.0)

    def test_distance(self):
        assert Point(0, 0).distance_to(Point(3, 4)) == pytest.approx(5.0)

    def test_as_tuple(self):
        assert Point(1.5, -2.5).as_tuple() == (1.5, -2.5)

    def test_immutable(self):
        with pytest.raises(AttributeError):
            Point(0, 0).x = 1.0


class TestRectBasics:
    def test_measures(self):
        r = Rect(1, 2, 4, 6)
        assert r.width == 3
        assert r.height == 4
        assert r.area == 12
        assert r.center == Point(2.5, 4.0)

    def test_inverted_bounds_raise(self):
        with pytest.raises(GeometryError):
            Rect(2, 0, 1, 5)
        with pytest.raises(GeometryError):
            Rect(0, 5, 1, 4)

    def test_degenerate_allowed_and_empty(self):
        assert Rect(1, 1, 1, 5).is_empty()
        assert Rect(1, 1, 5, 1).is_empty()
        assert not Rect(0, 0, 1, 1).is_empty()

    def test_half_open_membership(self):
        r = Rect(0, 0, 10, 10)
        assert r.contains_point(0, 0)  # low edges included
        assert not r.contains_point(10, 5)  # high edges excluded
        assert not r.contains_point(5, 10)
        assert r.contains_point(9.999, 9.999)

    def test_contains_rect(self):
        outer = Rect(0, 0, 10, 10)
        assert outer.contains_rect(Rect(1, 1, 9, 9))
        assert outer.contains_rect(Rect(0, 0, 10, 10))
        assert not outer.contains_rect(Rect(5, 5, 11, 9))
        # Empty rect is a subset of anything.
        assert outer.contains_rect(Rect(50, 50, 50, 50))

    def test_intersects_half_open(self):
        a = Rect(0, 0, 10, 10)
        assert not a.intersects(Rect(10, 0, 20, 10))  # shares only a boundary
        assert a.intersects(Rect(9.99, 0, 20, 10))
        assert not a.intersects(Rect(0, 10, 10, 20))

    def test_intersection(self):
        a = Rect(0, 0, 10, 10)
        b = Rect(5, 5, 15, 15)
        assert a.intersection(b) == Rect(5, 5, 10, 10)
        assert a.intersection(Rect(20, 20, 30, 30)).is_empty()

    def test_union_bounds(self):
        assert Rect(0, 0, 1, 1).union_bounds(Rect(5, 5, 6, 7)) == Rect(0, 0, 6, 7)

    def test_expanded_translated(self):
        assert Rect(2, 2, 4, 4).expanded(1) == Rect(1, 1, 5, 5)
        assert Rect(0, 0, 1, 1).translated(2, 3) == Rect(2, 3, 3, 4)

    def test_from_center(self):
        assert Rect.from_center(Point(5, 5), 4, 2) == Rect(3, 4, 7, 6)

    def test_corners_order(self):
        pts = list(Rect(0, 0, 1, 2).corners())
        assert pts == [Point(0, 0), Point(1, 0), Point(1, 2), Point(0, 2)]

    def test_bounding(self):
        box = Rect.bounding([Rect(0, 0, 1, 1), Rect(5, -2, 6, 0)])
        assert box == Rect(0, -2, 6, 1)

    def test_bounding_empty_raises(self):
        with pytest.raises(GeometryError):
            Rect.bounding([])


class TestSquareSemantics:
    """Definition 1: right/top edges included, left/bottom excluded."""

    def test_square_bounds(self):
        assert square_bounds(10, 20, 4) == (8, 18, 12, 22)

    def test_right_top_included(self):
        assert point_in_square(12, 22, 10, 20, 4)

    def test_left_bottom_excluded(self):
        assert not point_in_square(8, 20, 10, 20, 4)
        assert not point_in_square(10, 18, 10, 20, 4)

    def test_interior(self):
        assert point_in_square(10, 20, 10, 20, 4)

    def test_outside(self):
        assert not point_in_square(12.001, 20, 10, 20, 4)

    @given(coords, coords, coords, coords, st.floats(0.1, 50))
    def test_duality_with_influence_rect(self, ox, oy, cx, cy, l):
        """object in S_l(center)  <=>  center in influence(object)."""
        lhs = point_in_square(ox, oy, cx, cy, l)
        rhs = object_influence_rect(ox, oy, l).contains_point(cx, cy)
        assert lhs == rhs

    def test_influence_rect_shape(self):
        r = object_influence_rect(10, 20, 4)
        assert r == Rect(8, 18, 12, 22)


class TestMergeTouchingIntervals:
    def test_empty(self):
        assert merge_touching_intervals([]) == []

    def test_drops_empty_intervals(self):
        assert merge_touching_intervals([(1, 1), (2, 2)]) == []

    def test_disjoint_stay_separate(self):
        assert merge_touching_intervals([(0, 1), (2, 3)]) == [(0, 1), (2, 3)]

    def test_touching_merge(self):
        assert merge_touching_intervals([(0, 1), (1, 2)]) == [(0, 2)]

    def test_overlap_merge_unsorted(self):
        assert merge_touching_intervals([(3, 5), (0, 4)]) == [(0, 5)]

    def test_nested(self):
        assert merge_touching_intervals([(0, 10), (2, 3)]) == [(0, 10)]

    @given(
        st.lists(
            st.tuples(st.floats(-100, 100), st.floats(-100, 100)).map(
                lambda t: (min(t), max(t))
            ),
            max_size=20,
        )
    )
    def test_total_length_preserved_or_reduced(self, intervals):
        merged = merge_touching_intervals(intervals)
        # Merged intervals are sorted, disjoint and non-empty.
        for lo, hi in merged:
            assert hi > lo
        for (a_lo, a_hi), (b_lo, b_hi) in zip(merged, merged[1:]):
            assert a_hi < b_lo
        # Union length never exceeds the summed input lengths.
        assert sum(hi - lo for lo, hi in merged) <= sum(
            hi - lo for lo, hi in intervals
        ) + 1e-9

    @given(
        st.lists(
            st.tuples(st.integers(-20, 20), st.integers(-20, 20)).map(
                lambda t: (min(t), max(t))
            ),
            max_size=12,
        ),
        st.integers(-25, 25),
    )
    def test_membership_preserved(self, intervals, probe):
        merged = merge_touching_intervals(intervals)
        x = probe + 0.5  # probe interiors, away from endpoints
        in_original = any(lo <= x < hi for lo, hi in intervals)
        in_merged = any(lo <= x < hi for lo, hi in merged)
        assert in_original == in_merged
