"""Tests for density-histogram maintenance (Section 5.1)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.errors import HorizonError, InvalidParameterError
from repro.core.geometry import Rect
from repro.histogram.density_histogram import DensityHistogram
from repro.motion.model import Motion
from repro.motion.table import ObjectTable

DOMAIN = Rect(0.0, 0.0, 100.0, 100.0)


def make_hist(m=10, horizon=5, tnow=0):
    return DensityHistogram(DOMAIN, m=m, horizon=horizon, tnow=tnow)


def brute_counts(table: ObjectTable, hist: DensityHistogram, qt: int) -> np.ndarray:
    counts = np.zeros((hist.m, hist.m), dtype=int)
    for _oid, x, y in table.positions_at(qt):
        if DOMAIN.contains_point(x, y):
            i, j = hist.cell_of(x, y)
            counts[i, j] += 1
    return counts


class TestGeometryHelpers:
    def test_cell_edge(self):
        assert make_hist(m=10).cell_edge == pytest.approx(10.0)

    def test_cell_rect(self):
        hist = make_hist(m=10)
        assert hist.cell_rect(0, 0) == Rect(0, 0, 10, 10)
        assert hist.cell_rect(2, 3) == Rect(20, 30, 30, 40)

    def test_cell_of(self):
        hist = make_hist(m=10)
        assert hist.cell_of(0.0, 0.0) == (0, 0)
        assert hist.cell_of(99.99, 0.5) == (9, 0)
        assert hist.cell_of(10.0, 10.0) == (1, 1)  # cell low edges inclusive

    def test_cell_of_outside_raises(self):
        with pytest.raises(InvalidParameterError):
            make_hist().cell_of(100.0, 0.0)  # domain is half-open

    def test_invalid_construction(self):
        with pytest.raises(InvalidParameterError):
            DensityHistogram(DOMAIN, m=0, horizon=5)
        with pytest.raises(InvalidParameterError):
            DensityHistogram(DOMAIN, m=5, horizon=-1)

    def test_memory_bytes(self):
        hist = make_hist(m=10, horizon=5)
        assert hist.memory_bytes() == 6 * 10 * 10 * 4


class TestMaintenance:
    def test_insert_counts_whole_trajectory(self):
        hist = make_hist(m=10, horizon=5)
        table = ObjectTable()
        table.add_listener(hist)
        table.report(0, 5.0, 5.0, 10.0, 0.0)  # crosses one cell per timestamp
        for qt in range(6):
            counts = hist.counts_at(qt)
            assert counts.sum() == 1
            i, j = hist.cell_of(5.0 + 10.0 * qt, 5.0) if qt < 10 else (None, None)
            assert counts[i, j] == 1

    def test_object_leaving_domain_drops_out(self):
        hist = make_hist(m=10, horizon=5)
        table = ObjectTable()
        table.add_listener(hist)
        table.report(0, 95.0, 5.0, 10.0, 0.0)  # exits after t=0
        assert hist.counts_at(0).sum() == 1
        assert hist.counts_at(1).sum() == 0

    def test_delete_cancels_insert(self):
        hist = make_hist(m=10, horizon=5)
        table = ObjectTable()
        table.add_listener(hist)
        table.report(0, 5.0, 5.0, 1.0, 1.0)
        table.retire(0)
        for qt in range(6):
            assert hist.counts_at(qt).sum() == 0

    def test_rereport_replaces_trajectory(self):
        hist = make_hist(m=10, horizon=5)
        table = ObjectTable()
        table.add_listener(hist)
        table.report(0, 5.0, 5.0, 10.0, 0.0)
        table.report(0, 55.0, 55.0, 0.0, 0.0)  # same time: delete + insert
        counts = hist.counts_at(3)
        assert counts.sum() == 1
        assert counts[hist.cell_of(55.0, 55.0)] == 1

    @given(st.integers(1, 30), st.integers(0, 10_000), st.integers(0, 5))
    @settings(max_examples=30, deadline=None)
    def test_counts_match_bruteforce(self, n, seed, qt):
        gen = np.random.default_rng(seed)
        hist = make_hist(m=10, horizon=5)
        table = ObjectTable()
        table.add_listener(hist)
        for oid in range(n):
            table.report(
                oid,
                float(gen.uniform(0, 100)),
                float(gen.uniform(0, 100)),
                float(gen.uniform(-3, 3)),
                float(gen.uniform(-3, 3)),
            )
        assert (hist.counts_at(qt) == brute_counts(table, hist, qt)).all()


class TestRingBuffer:
    def test_window_bounds(self):
        hist = make_hist(horizon=5)
        assert hist.window == (0, 5)
        with pytest.raises(HorizonError):
            hist.counts_at(6)
        hist.counts_at(0)  # in range

    def test_advance_shifts_window(self):
        hist = make_hist(m=10, horizon=5)
        table = ObjectTable()
        table.add_listener(hist)
        table.report(0, 5.0, 5.0, 0.0, 0.0)
        table.advance_to(2)
        assert hist.window == (2, 7)
        with pytest.raises(HorizonError):
            hist.counts_at(1)
        # Times covered by the original insert stay correct.
        assert hist.counts_at(5).sum() == 1
        # Times beyond the insert's horizon are (correctly) empty until the
        # object re-reports.
        assert hist.counts_at(7).sum() == 0

    def test_new_slot_filled_by_post_advance_reports(self):
        hist = make_hist(m=10, horizon=5)
        table = ObjectTable()
        table.add_listener(hist)
        table.report(0, 5.0, 5.0, 0.0, 0.0)
        table.advance_to(3)
        table.report(0, 5.0, 5.0, 0.0, 0.0)  # refresh
        assert hist.counts_at(8).sum() == 1  # slot t=8 covered by the refresh

    def test_advance_past_whole_window_resets(self):
        hist = make_hist(m=10, horizon=5)
        table = ObjectTable()
        table.add_listener(hist)
        table.report(0, 5.0, 5.0, 0.0, 0.0)
        table.advance_to(20)
        for qt in range(20, 26):
            assert hist.counts_at(qt).sum() == 0

    def test_delete_after_advance_only_touches_live_slots(self):
        hist = make_hist(m=10, horizon=5)
        table = ObjectTable()
        table.add_listener(hist)
        table.report(0, 5.0, 5.0, 0.0, 0.0)  # covers [0, 5]
        table.advance_to(2)  # window now [2, 7]
        table.report(0, 55.0, 55.0, 0.0, 0.0)  # delete old + insert new
        for qt in range(2, 6):
            counts = hist.counts_at(qt)
            assert counts.sum() == 1
            assert counts[hist.cell_of(55.0, 55.0)] == 1
        # Old insert never covered 6..7; new insert does.
        assert hist.counts_at(7).sum() == 1
        # No negative counters anywhere.
        assert int(hist.counts_at(2).min()) >= 0

    def test_backwards_advance_rejected(self):
        hist = make_hist(tnow=5)
        with pytest.raises(InvalidParameterError):
            hist.on_advance(4)


class TestPrefixSums:
    def test_prefix_sums_block(self):
        hist = make_hist(m=4, horizon=0)
        table = ObjectTable()
        table.add_listener(hist)
        # One object per cell of the 2x2 lower-left block.
        table.report(0, 5.0, 5.0, 0.0, 0.0)
        table.report(1, 30.0, 5.0, 0.0, 0.0)
        table.report(2, 5.0, 30.0, 0.0, 0.0)
        table.report(3, 30.0, 30.0, 0.0, 0.0)
        prefix = hist.prefix_sums(0)
        assert prefix[-1, -1] == 4
        sums0 = DensityHistogram.block_sums(prefix, radius=0)
        assert sums0[0, 0] == 1
        sums1 = DensityHistogram.block_sums(prefix, radius=1)
        assert sums1[0, 0] == 4  # clipped 2x2 block
        assert sums1[1, 1] == 4
        assert sums1[3, 3] == 0

    def test_block_sums_radius_clipping(self):
        hist = make_hist(m=3, horizon=0)
        table = ObjectTable()
        table.add_listener(hist)
        for oid, (x, y) in enumerate([(10, 10), (50, 50), (90, 90)]):
            table.report(oid, float(x), float(y), 0.0, 0.0)
        prefix = hist.prefix_sums(0)
        sums = DensityHistogram.block_sums(prefix, radius=5)  # covers all
        assert (sums == 3).all()

    def test_block_sums_negative_radius_raises(self):
        hist = make_hist(m=3, horizon=0)
        with pytest.raises(InvalidParameterError):
            DensityHistogram.block_sums(hist.prefix_sums(0), radius=-1)

    @given(st.integers(0, 10_000), st.integers(0, 3))
    @settings(max_examples=25, deadline=None)
    def test_block_sums_match_bruteforce(self, seed, radius):
        gen = np.random.default_rng(seed)
        hist = make_hist(m=6, horizon=0)
        table = ObjectTable()
        table.add_listener(hist)
        for oid in range(25):
            table.report(
                oid, float(gen.uniform(0, 100)), float(gen.uniform(0, 100)), 0.0, 0.0
            )
        counts = hist.counts_at(0)
        sums = DensityHistogram.block_sums(hist.prefix_sums(0), radius)
        for i in range(6):
            for j in range(6):
                lo_i, hi_i = max(i - radius, 0), min(i + radius + 1, 6)
                lo_j, hi_j = max(j - radius, 0), min(j + radius + 1, 6)
                assert sums[i, j] == counts[lo_i:hi_i, lo_j:hi_j].sum()
