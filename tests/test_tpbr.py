"""Tests for time-parameterized bounding rectangles."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.errors import IndexError_
from repro.core.geometry import Rect
from repro.index.tpbr import TPBR
from repro.motion.model import Motion

motion_strategy = st.builds(
    Motion,
    oid=st.integers(0, 1000),
    t_ref=st.integers(0, 10),
    x=st.floats(-100, 100),
    y=st.floats(-100, 100),
    vx=st.floats(-3, 3),
    vy=st.floats(-3, 3),
)


class TestFromMotion:
    def test_tracks_object_exactly(self):
        m = Motion(0, 2, 10.0, 20.0, 1.0, -0.5)
        bound = TPBR.from_motion(m, t_ref=2)
        for t in (2, 5, 10):
            x, y = m.position_at(t)
            r = bound.rect_at(t)
            assert r.x1 == pytest.approx(x)
            assert r.x2 == pytest.approx(x)
            assert r.y1 == pytest.approx(y)
            assert r.y2 == pytest.approx(y)

    def test_backward_anchor(self):
        m = Motion(0, 5, 10.0, 0.0, 2.0, 0.0)
        bound = TPBR.from_motion(m, t_ref=0)  # extrapolated back
        r = bound.rect_at(5)
        assert r.x1 == pytest.approx(10.0)


class TestEvaluation:
    def test_rect_at_grows_with_velocity_spread(self):
        bound = TPBR(0, 0, 0, 10, 10, -1, -1, 1, 1)
        r = bound.rect_at(5)
        assert r == Rect(-5, -5, 15, 15)

    def test_rect_at_before_anchor_raises(self):
        bound = TPBR(5, 0, 0, 1, 1, 0, 0, 0, 0)
        with pytest.raises(IndexError_):
            bound.rect_at(4)

    def test_area_at(self):
        bound = TPBR(0, 0, 0, 2, 3, 0, 0, 1, 0)
        assert bound.area_at(0) == pytest.approx(6.0)
        assert bound.area_at(2) == pytest.approx(12.0)

    def test_integral_area_matches_numeric(self):
        bound = TPBR(0, 0, 0, 2, 3, -0.5, 0, 1, 0.25)
        ts = np.linspace(1.0, 7.0, 20001)
        numeric = np.trapezoid([bound.area_at(t) for t in ts], ts)
        assert bound.integral_area(1.0, 7.0) == pytest.approx(numeric, rel=1e-5)

    def test_integral_area_empty_range_raises(self):
        bound = TPBR(0, 0, 0, 1, 1, 0, 0, 0, 0)
        with pytest.raises(IndexError_):
            bound.integral_area(5, 4)

    def test_intersects_rect_at_is_closed(self):
        bound = TPBR(0, 0, 0, 10, 10, 0, 0, 0, 0)
        # Touching boundaries count as intersecting (never prunes wrongly).
        assert bound.intersects_rect_at(Rect(10, 0, 20, 10), 0)
        assert not bound.intersects_rect_at(Rect(10.01, 0, 20, 10), 0)

    def test_intersects_moving(self):
        bound = TPBR(0, 0, 0, 1, 1, 1, 0, 1, 0)  # sliding right
        target = Rect(10, 0, 11, 1)
        assert not bound.intersects_rect_at(target, 0)
        assert bound.intersects_rect_at(target, 10)


class TestExtend:
    def test_extend_motion_contains_trajectory(self):
        bound = TPBR.empty(0)
        motions = [
            Motion(0, 0, 0.0, 0.0, 1.0, 0.0),
            Motion(1, 0, 5.0, 5.0, -1.0, 0.5),
        ]
        for m in motions:
            bound.extend_motion(m)
        for t in (0, 3, 12):
            r = bound.rect_at(t)
            for m in motions:
                x, y = m.position_at(t)
                assert r.x1 - 1e-9 <= x <= r.x2 + 1e-9
                assert r.y1 - 1e-9 <= y <= r.y2 + 1e-9

    def test_extend_tpbr_contains_operand(self):
        a = TPBR(0, 0, 0, 1, 1, -0.5, 0, 0.5, 0)
        b = TPBR(2, 10, 10, 12, 12, 0, -1, 0, 1)
        merged = a.copy()
        merged.extend_tpbr(b)
        for t in (2, 6, 20):
            outer = merged.rect_at(t)
            inner = b.rect_at(t)
            assert outer.x1 - 1e-9 <= inner.x1
            assert inner.x2 <= outer.x2 + 1e-9
            assert outer.y1 - 1e-9 <= inner.y1
            assert inner.y2 <= outer.y2 + 1e-9

    def test_extend_with_empty_is_noop(self):
        a = TPBR(0, 0, 0, 1, 1, 0, 0, 0, 0)
        before = a.copy()
        a.extend_tpbr(TPBR.empty(0))
        assert a == before

    def test_empty_flag(self):
        assert TPBR.empty(0).is_empty()
        assert not TPBR(0, 0, 0, 1, 1, 0, 0, 0, 0).is_empty()

    def test_enlarged_integral_does_not_mutate(self):
        bound = TPBR(0, 0, 0, 1, 1, 0, 0, 0, 0)
        before = bound.copy()
        grown = bound.enlarged_integral(Motion(0, 0, 50.0, 50.0, 1.0, 1.0), 0, 10)
        assert bound == before
        assert grown > bound.integral_area(0, 10)

    @given(st.lists(motion_strategy, min_size=1, max_size=8), st.integers(10, 40))
    @settings(max_examples=60)
    def test_bound_contains_all_motions_property(self, motions, t):
        bound = TPBR.empty(10)
        for m in motions:
            bound.extend_motion(m)
        r = bound.rect_at(float(t))
        for m in motions:
            x, y = m.position_at(float(t))
            assert r.x1 - 1e-6 <= x <= r.x2 + 1e-6
            assert r.y1 - 1e-6 <= y <= r.y2 + 1e-6

    @given(st.lists(motion_strategy, min_size=1, max_size=6))
    @settings(max_examples=40)
    def test_integral_area_nonnegative(self, motions):
        bound = TPBR.empty(10)
        for m in motions:
            bound.extend_motion(m)
        assert bound.integral_area(10, 30) >= 0.0
