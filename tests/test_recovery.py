"""Checkpoint/replay recovery: crash anywhere, recover everywhere.

The scripted acceptance scenario of the fault-tolerance work: a
deterministic 200-tick workload is crashed at every named fault site of
the durability protocol (``wal.append``, ``report.apply``,
``advance.apply``, ``checkpoint.write``, ``checkpoint.manifest``),
recovered with :meth:`PDRServer.recover`, resumed, and compared against
an uncrashed reference run — exactly for FR answers, at coefficient level
(bit-for-bit) for PA, with a clean structural audit throughout.  Also
covered: torn WAL tails, corrupt checkpoints with fallback, WAL-only
recovery, and the fresh-directory guard.
"""

from __future__ import annotations

import json
import os

import numpy as np
import pytest

from tests.conftest import small_system_config
from repro import PDRServer
from repro.core.errors import AuditError, RecoveryError, StorageError
from repro.reliability.faults import FaultInjector, InjectedCrashError
from repro.reliability.recovery import audit_server
from repro.reliability.validation import ReliabilityConfig

N_TICKS = 200
N_OBJECTS = 30
CKPT_INTERVAL = 25

CRASH_SITES = (
    "wal.append",
    "report.apply",
    "advance.apply",
    "checkpoint.write",
    "checkpoint.manifest",
)


def make_workload(n_ticks: int = N_TICKS, seed: int = 42):
    """A deterministic op list, 1:1 with WAL LSNs (every op is accepted)."""
    rng = np.random.default_rng(seed)
    live = set()
    ops = []
    for t in range(1, n_ticks + 1):
        ops.append(("advance", t))
        for oid in rng.choice(N_OBJECTS, size=3, replace=False):
            oid = int(oid)
            x, y = rng.uniform(1.0, 99.0, size=2)
            vx, vy = rng.uniform(-1.5, 1.5, size=2)
            ops.append(("report", oid, float(x), float(y), float(vx), float(vy)))
            live.add(oid)
        if t % 17 == 0 and live:
            ops.append(("retire", int(sorted(live)[0])))
            live.discard(sorted(live)[0])
    return ops


def apply_op(server: PDRServer, op) -> None:
    if op[0] == "advance":
        server.advance_to(op[1])
    elif op[0] == "retire":
        assert server.retire(op[1]) is True
    else:
        motion = server.report(*op[1:])
        assert motion is not None


OPS = make_workload()


@pytest.fixture(scope="module")
def reference():
    """The uncrashed run every recovery must reproduce."""
    server = PDRServer(small_system_config(), expected_objects=N_OBJECTS)
    for op in OPS:
        apply_op(server, op)
    return server


def durable_config(tmp_path, faults=None, interval=CKPT_INTERVAL, **kwargs):
    return ReliabilityConfig(
        state_dir=os.path.join(str(tmp_path), "state"),
        checkpoint_interval=interval,
        fsync=False,  # keep the suite fast; the fsync path is exercised below
        faults=faults,
        **kwargs,
    )


def assert_states_match(recovered: PDRServer, reference: PDRServer) -> None:
    """Exact FR answers, bit-exact PA coefficients, clean audit."""
    assert recovered.tnow == reference.tnow
    assert recovered.object_count() == reference.object_count()
    assert np.array_equal(
        recovered.pa.state_arrays()["coeffs"], reference.pa.state_arrays()["coeffs"]
    )
    assert np.array_equal(
        recovered.histogram.state_arrays()["counts"],
        reference.histogram.state_arrays()["counts"],
    )
    for qt in (recovered.tnow, recovered.tnow + 3):
        for method in ("fr", "pa"):
            got = recovered.query(method, qt=qt, rho=0.003)
            want = reference.query(method, qt=qt, rho=0.003)
            assert {r.as_tuple() for r in got.regions} == {
                r.as_tuple() for r in want.regions
            }
    assert recovered.audit() == []


class TestCleanRecovery:
    def test_recover_after_clean_shutdown(self, tmp_path, reference):
        rc = durable_config(tmp_path)
        server = PDRServer(small_system_config(), expected_objects=N_OBJECTS, reliability=rc)
        for op in OPS:
            apply_op(server, op)
        assert server.wal_lsn == len(OPS)
        server.close()
        recovered = PDRServer.recover(rc.state_dir)
        assert recovered.wal_lsn == len(OPS)
        assert_states_match(recovered, reference)
        recovered.close()

    def test_recovered_server_keeps_serving_updates(self, tmp_path):
        rc = durable_config(tmp_path)
        server = PDRServer(small_system_config(), expected_objects=N_OBJECTS, reliability=rc)
        for op in OPS[:100]:
            apply_op(server, op)
        server.close()
        recovered = PDRServer.recover(rc.state_dir)
        for op in OPS[100:]:
            apply_op(recovered, op)
        assert recovered.wal_lsn == len(OPS)
        assert recovered.audit() == []
        recovered.close()
        # and the continued log is itself recoverable
        again = PDRServer.recover(rc.state_dir)
        assert again.wal_lsn == len(OPS)
        again.close()

    def test_wal_only_recovery_without_checkpoints(self, tmp_path, reference):
        rc = durable_config(tmp_path, interval=0)
        server = PDRServer(small_system_config(), expected_objects=N_OBJECTS, reliability=rc)
        for op in OPS:
            apply_op(server, op)
        server.close()
        assert not any(n.startswith("ckpt-") for n in os.listdir(rc.state_dir))
        recovered = PDRServer.recover(rc.state_dir)
        assert_states_match(recovered, reference)
        recovered.close()

    def test_fsync_path(self, tmp_path):
        rc = ReliabilityConfig(
            state_dir=os.path.join(str(tmp_path), "state"),
            checkpoint_interval=5,
            fsync=True,
        )
        server = PDRServer(small_system_config(), expected_objects=N_OBJECTS, reliability=rc)
        for op in OPS[:40]:
            apply_op(server, op)
        server.close()
        recovered = PDRServer.recover(rc.state_dir)
        assert recovered.wal_lsn == 40
        recovered.close()


class TestCrashMatrix:
    @pytest.mark.parametrize("site", CRASH_SITES)
    def test_crash_recover_resume_matches_reference(self, site, tmp_path, reference):
        faults = FaultInjector()
        # crash deep enough into the run that several checkpoints exist;
        # sites are hit at very different rates (advance once per tick,
        # wal.append once per accepted op, checkpoints every 25 ticks)
        after = {"checkpoint.write": 6, "checkpoint.manifest": 6, "advance.apply": 120}
        faults.inject_crash(site, after=after.get(site, 450))
        rc = durable_config(tmp_path, faults=faults)
        server = PDRServer(small_system_config(), expected_objects=N_OBJECTS, reliability=rc)
        crashed = False
        for op in OPS:
            try:
                apply_op(server, op)
            except InjectedCrashError:
                crashed = True
                break
        assert crashed, f"site {site} never crashed the workload"

        recovered = PDRServer.recover(rc.state_dir)
        assert recovered.audit() == []
        # the WAL LSN counts accepted ops, so it is the resume cursor:
        # everything logged (even if never applied pre-crash) was replayed
        resume_from = recovered.wal_lsn
        assert 0 < resume_from < len(OPS)
        for op in OPS[resume_from:]:
            apply_op(recovered, op)
        assert recovered.wal_lsn == len(OPS)
        assert_states_match(recovered, reference)
        recovered.close()

    def test_repeated_crashes_during_recovery_workload(self, tmp_path, reference):
        """Crash, recover, crash again at a different site, recover again."""
        faults = FaultInjector()
        faults.inject_crash("report.apply", after=200)
        rc = durable_config(tmp_path, faults=faults)
        server = PDRServer(small_system_config(), expected_objects=N_OBJECTS, reliability=rc)
        cursor = 0
        with pytest.raises(InjectedCrashError):
            for op in OPS:
                apply_op(server, op)
                cursor += 1
        faults2 = FaultInjector()
        faults2.inject_crash("advance.apply", after=100)
        recovered = PDRServer.recover(rc.state_dir, faults=faults2)
        with pytest.raises(InjectedCrashError):
            for op in OPS[recovered.wal_lsn:]:
                apply_op(recovered, op)
        final = PDRServer.recover(rc.state_dir)
        for op in OPS[final.wal_lsn:]:
            apply_op(final, op)
        assert_states_match(final, reference)
        final.close()


class TestCorruptionHandling:
    def _run_durable(self, tmp_path, n_ops=150):
        rc = durable_config(tmp_path)
        server = PDRServer(small_system_config(), expected_objects=N_OBJECTS, reliability=rc)
        for op in OPS[:n_ops]:
            apply_op(server, op)
        server.close()
        return rc, server

    def test_torn_wal_tail_is_truncated(self, tmp_path):
        rc, server = self._run_durable(tmp_path)
        wal_files = sorted(
            n for n in os.listdir(rc.state_dir) if n.startswith("wal-")
        )
        tail = os.path.join(rc.state_dir, wal_files[-1])
        with open(tail, "ab") as fh:
            fh.write(b'{"op": "report", "t": 99, "oid"')  # torn mid-record
        recovered = PDRServer.recover(rc.state_dir)
        assert recovered.wal_lsn == server.wal_lsn  # torn record dropped
        assert recovered.audit() == []
        # the repaired log accepts new appends and stays recoverable
        apply_op(recovered, OPS[150])
        recovered.close()
        again = PDRServer.recover(rc.state_dir)
        assert again.wal_lsn == server.wal_lsn + 1
        again.close()

    def test_corrupt_newest_checkpoint_falls_back_to_older(self, tmp_path, reference):
        rc = durable_config(tmp_path)
        server = PDRServer(small_system_config(), expected_objects=N_OBJECTS, reliability=rc)
        for op in OPS:
            apply_op(server, op)
        server.close()
        ckpts = sorted(
            n for n in os.listdir(rc.state_dir)
            if n.startswith("ckpt-") and n.endswith(".npz")
        )
        assert len(ckpts) >= 2  # keep_checkpoints=2
        newest = os.path.join(rc.state_dir, ckpts[-1])
        with open(newest, "wb") as fh:
            fh.write(b"not a zip archive")
        recovered = PDRServer.recover(rc.state_dir)
        assert_states_match(recovered, reference)
        recovered.close()

    def test_all_checkpoints_corrupt_is_a_recovery_error(self, tmp_path):
        rc, _ = self._run_durable(tmp_path)
        for name in os.listdir(rc.state_dir):
            if name.startswith("ckpt-") and name.endswith(".npz"):
                with open(os.path.join(rc.state_dir, name), "wb") as fh:
                    fh.write(b"garbage")
        # no loadable checkpoint and the early WAL segments were pruned:
        # recovery must refuse rather than silently lose updates
        with pytest.raises(RecoveryError):
            PDRServer.recover(rc.state_dir)

    def test_missing_directory_is_a_recovery_error(self, tmp_path):
        with pytest.raises(RecoveryError):
            PDRServer.recover(os.path.join(str(tmp_path), "nowhere"))

    def test_fresh_dir_guard_refuses_existing_state(self, tmp_path):
        rc, _ = self._run_durable(tmp_path)
        with pytest.raises(StorageError, match="recover"):
            PDRServer(
                small_system_config(), expected_objects=N_OBJECTS, reliability=rc
            )

    def test_wal_gap_is_detected(self, tmp_path):
        rc, _ = self._run_durable(tmp_path, n_ops=30)
        wal_files = sorted(
            n for n in os.listdir(rc.state_dir) if n.startswith("wal-")
        )
        tail = os.path.join(rc.state_dir, wal_files[-1])
        with open(tail, "r", encoding="utf-8") as fh:
            lines = fh.readlines()
        del lines[len(lines) // 2]  # drop a record from the middle
        with open(tail, "w", encoding="utf-8") as fh:
            fh.writelines(lines)
        with pytest.raises(RecoveryError, match="gap"):
            PDRServer.recover(rc.state_dir)


class TestAudit:
    def test_audit_detects_structure_divergence(self):
        server = PDRServer(small_system_config(), expected_objects=N_OBJECTS)
        for op in OPS[:50]:
            apply_op(server, op)
        assert server.audit() == []
        # silently drop an object from the table only: every structure
        # now disagrees with the registry, which the audit must surface
        oid = next(iter(server.table.motions())).oid
        server.table._motions.pop(oid)
        violations = server.audit(raise_on_violation=False)
        assert any("tree holds" in v for v in violations)
        assert any("histogram total" in v for v in violations)
        with pytest.raises(AuditError) as info:
            audit_server(server)
        assert info.value.violations == violations

    def test_recover_runs_the_audit_by_default(self, tmp_path):
        rc = durable_config(tmp_path)
        server = PDRServer(small_system_config(), expected_objects=N_OBJECTS, reliability=rc)
        for op in OPS[:150]:
            apply_op(server, op)
        server.close()
        # cheapest way to produce an inconsistent recovered state:
        # corrupt the checkpointed histogram by flipping one count
        ckpts = sorted(
            n for n in os.listdir(rc.state_dir)
            if n.startswith("ckpt-") and n.endswith(".npz")
        )
        if not ckpts:
            pytest.skip("workload prefix produced no checkpoint")
        path = os.path.join(rc.state_dir, ckpts[-1])
        with np.load(path, allow_pickle=False) as data:
            payload = {k: data[k] for k in data.files}
        payload["hist_counts"] = payload["hist_counts"].copy()
        # corrupt the ring slot holding the *final* clock's timestamp:
        # every older slot is retired (zeroed) during replay, so only this
        # one carries checkpoint corruption through to the live window
        slots = payload["hist_counts"].shape[0]
        payload["hist_counts"][server.tnow % slots].flat[0] += 7
        with open(path, "wb") as fh:
            np.savez_compressed(fh, **payload)
        # semantic corruption, not bit rot: refresh the manifest digest so
        # the image still checksum-verifies (otherwise recovery would treat
        # it as damaged and fall back) and only the audit can catch it
        from repro.reliability.integrity import file_crc

        manifest_path = os.path.join(rc.state_dir, "MANIFEST.json")
        with open(manifest_path, encoding="utf-8") as fh:
            manifest = json.load(fh)
        manifest.setdefault("digests", {})[os.path.basename(path)] = file_crc(path)
        with open(manifest_path, "w", encoding="utf-8") as fh:
            json.dump(manifest, fh)
        with pytest.raises(AuditError):
            PDRServer.recover(rc.state_dir)
        # ... but an explicit opt-out lets an operator inspect the state
        damaged = PDRServer.recover(rc.state_dir, audit=False)
        assert damaged.audit(raise_on_violation=False) != []
        damaged.close()


class TestStateDirLayout:
    def test_manifest_and_sidecars_agree(self, tmp_path):
        rc = durable_config(tmp_path)
        server = PDRServer(small_system_config(), expected_objects=N_OBJECTS, reliability=rc)
        for op in OPS[:150]:
            apply_op(server, op)
        server.close()
        with open(os.path.join(rc.state_dir, "MANIFEST.json")) as fh:
            seq = json.load(fh)["seq"]
        with open(os.path.join(rc.state_dir, f"ckpt-{seq:08d}.json")) as fh:
            sidecar = json.load(fh)
        assert sidecar["seq"] == seq
        assert 0 < sidecar["lsn"] <= 150
        assert os.path.exists(os.path.join(rc.state_dir, f"ckpt-{seq:08d}.npz"))

    def test_old_checkpoints_and_wal_segments_pruned(self, tmp_path):
        rc = durable_config(tmp_path)
        server = PDRServer(small_system_config(), expected_objects=N_OBJECTS, reliability=rc)
        for op in OPS:
            apply_op(server, op)
        server.close()
        names = os.listdir(rc.state_dir)
        ckpt_seqs = sorted(
            int(n[5:13]) for n in names if n.startswith("ckpt-") and n.endswith(".npz")
        )
        wal_seqs = sorted(int(n[4:12]) for n in names if n.startswith("wal-"))
        assert len(ckpt_seqs) == 2  # keep_checkpoints default
        assert min(wal_seqs) >= min(ckpt_seqs)


class TestRecordsFromLsn:
    """The public replay cursor the replication layer catches up with."""

    def _oldest_kept_lsn(self, state_dir: str) -> int:
        seqs = sorted(
            int(n[5:13]) for n in os.listdir(state_dir)
            if n.startswith("ckpt-") and n.endswith(".json")
        )
        with open(os.path.join(state_dir, f"ckpt-{seqs[0]:08d}.json")) as fh:
            return int(json.load(fh)["lsn"])

    def test_tail_replay_across_segments_spanning_a_prune(self, tmp_path):
        from repro.reliability.recovery import records_from_lsn

        rc = durable_config(tmp_path)
        server = PDRServer(small_system_config(), expected_objects=N_OBJECTS, reliability=rc)
        for op in OPS:
            apply_op(server, op)
        end = server.wal_lsn
        server.close()
        # the full run checkpointed ~8 times but keeps 2: the cursor reaches
        # exactly back to the oldest kept checkpoint and no further
        oldest = self._oldest_kept_lsn(rc.state_dir)
        assert 0 < oldest < end
        records = list(records_from_lsn(rc.state_dir, oldest))
        assert [r["lsn"] for r in records] == list(range(oldest + 1, end + 1))
        # each record is the op that produced that LSN (ops are 1:1)
        for r in (records[0], records[-1]):
            assert r["op"] in ("report", "retire", "advance")
            assert r["op"] == ("advance" if OPS[r["lsn"] - 1][0] == "advance"
                               else OPS[r["lsn"] - 1][0])
        # a mid-tail cursor yields exactly the remainder, across segments
        mid = (oldest + end) // 2
        tail = list(records_from_lsn(rc.state_dir, mid))
        assert tail == records[mid - oldest:]
        # a caught-up cursor yields nothing (and does not raise)
        assert list(records_from_lsn(rc.state_dir, end)) == []

    def test_cursor_behind_the_pruned_horizon_raises(self, tmp_path):
        from repro.reliability.recovery import records_from_lsn

        rc = durable_config(tmp_path)
        server = PDRServer(small_system_config(), expected_objects=N_OBJECTS, reliability=rc)
        for op in OPS:
            apply_op(server, op)
        server.close()
        with pytest.raises(RecoveryError, match="pruned|cannot replay"):
            list(records_from_lsn(rc.state_dir, 0))
        with pytest.raises(RecoveryError):
            list(records_from_lsn(rc.state_dir, -1))

    def test_manager_method_delegates_to_the_module_cursor(self, tmp_path):
        rc = durable_config(tmp_path)
        server = PDRServer(small_system_config(), expected_objects=N_OBJECTS, reliability=rc)
        for op in OPS[:30]:
            apply_op(server, op)
        got = list(server._manager.records_from_lsn(10))
        assert [r["lsn"] for r in got] == list(range(11, 31))
        server.close()


class TestKeepCheckpoints:
    def test_recovery_from_oldest_kept_checkpoint_after_cycles(self, tmp_path, reference):
        rc = durable_config(tmp_path, keep_checkpoints=3)
        server = PDRServer(small_system_config(), expected_objects=N_OBJECTS, reliability=rc)
        for op in OPS:
            apply_op(server, op)
        server.close()
        names = os.listdir(rc.state_dir)
        ckpt_seqs = sorted(
            int(n[5:13]) for n in names if n.startswith("ckpt-") and n.endswith(".npz")
        )
        wal_seqs = sorted(int(n[4:12]) for n in names if n.startswith("wal-"))
        assert len(ckpt_seqs) == 3  # several cycles ran; exactly 3 kept
        assert min(wal_seqs) >= min(ckpt_seqs)  # WAL reaches the oldest kept
        # wreck every checkpoint newer than the oldest kept: recovery must
        # fall back to the oldest *kept* image and replay the rest of the WAL
        for seq in ckpt_seqs[1:]:
            with open(os.path.join(rc.state_dir, f"ckpt-{seq:08d}.npz"), "wb") as fh:
                fh.write(b"not a checkpoint")
        recovered = PDRServer.recover(rc.state_dir)
        assert recovered.wal_lsn == len(OPS)
        assert_states_match(recovered, reference)
        recovered.close()
