"""Supervisor: restart-on-SIGKILL, crash loops, terminal exits.

These tests spawn **real OS processes** (``python -m repro serve``
children) because that is the supervisor's whole contract: notice a
corpse the kernel made, restart it over the same state dir at the same
pinned port, and let an already-connected :class:`ResilientClient` ride
the outage out.  Kept deliberately few and time-bounded — the full
crashpoint × seed sweep lives in the kill matrix
(``scripts/crash_matrix.py``), not here.
"""

from __future__ import annotations

import io
import os
import signal
import time

import pytest

from repro.core.errors import ClientError, ServingError
from repro.reliability.lockfile import acquire_state_dir_lock
from repro.serving.client import ClientConfig, ResilientClient
from repro.serving.supervisor import (
    EXIT_CRASH_LOOP,
    Supervisor,
    SupervisorConfig,
)


def _config(tmp_path, **overrides) -> SupervisorConfig:
    settings = dict(
        serve_args=["--state-dir", str(tmp_path / "state"),
                    "--objects", "16", "--replicas", "0", "--seed", "3"],
        probe_interval=0.1,
        startup_deadline=60.0,
        backoff_initial=0.05,
        backoff_max=0.2,
        seed=7,
    )
    settings.update(overrides)
    return SupervisorConfig(**settings)


def _wait(predicate, timeout: float) -> bool:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.05)
    return False


def test_sigkill_restart_is_transparent_to_a_connected_client(tmp_path):
    events = io.StringIO()
    supervisor = Supervisor(_config(tmp_path), out=events).start()
    try:
        assert supervisor.wait_ready(60.0)
        port = supervisor.port
        first_pid = supervisor.pid
        client = ResilientClient(
            [("127.0.0.1", port)],
            ClientConfig(max_attempts=12, backoff_cap=0.5, seed=1),
        )
        try:
            frame = client.report(0, 50.0, 50.0, 0.1, 0.1)
            assert frame["accepted"]
            acked_before = client.max_acked_lsn

            os.kill(first_pid, signal.SIGKILL)
            assert _wait(lambda: supervisor.restarts >= 1, 60.0)
            assert supervisor.wait_ready(60.0)
            # port pinning: the restart is at the address the client knows
            assert supervisor.port == port
            assert supervisor.pid != first_pid

            # the client reconnects through its retry/breaker machinery —
            # no new client object, no re-discovery by the test
            deadline = time.monotonic() + 60.0
            accepted = 0
            while accepted < 3 and time.monotonic() < deadline:
                try:
                    frame = client.report(1, 60.0, 60.0, 0.1, 0.1)
                    accepted += frame.get("accepted", 0)
                except (ClientError, ServingError, OSError):
                    pass
            assert accepted >= 3, "client never rode out the restart"
            assert client.max_acked_lsn > acked_before
            # recovery generation bumped exactly as health advertises it
            client.health()
            assert client.generation >= 1
            assert client.stats["connects"] >= 2
        finally:
            client.close()
    finally:
        supervisor.request_stop()
        assert supervisor.join(30.0) == 0
    log = events.getvalue()
    assert "event=ready" in log
    assert "event=backoff" in log
    assert "code=137" in log  # the SIGKILL was seen as such


def test_crash_loop_gives_up_with_exit_12(tmp_path):
    # a snapshot that does not exist crashes every incarnation with the
    # (retryable) storage exit 3 — the definition of a crash loop
    events = io.StringIO()
    supervisor = Supervisor(
        _config(
            tmp_path,
            serve_args=["--snapshot", str(tmp_path / "missing.npz")],
            backoff_initial=0.02,
            backoff_max=0.05,
            crash_loop_threshold=3,
            crash_loop_window=60.0,
        ),
        out=events,
    )
    assert supervisor.run() == EXIT_CRASH_LOOP
    assert supervisor.exit_code == EXIT_CRASH_LOOP
    log = events.getvalue()
    assert "reason=crash-loop" in log
    assert log.count("event=start") == 3  # threshold spawns, then give up


def test_locked_state_dir_is_terminal_not_a_restart_burner(tmp_path):
    state_dir = tmp_path / "state"
    state_dir.mkdir()
    lock = acquire_state_dir_lock(str(state_dir))
    events = io.StringIO()
    try:
        supervisor = Supervisor(_config(tmp_path), out=events)
        assert supervisor.run() == 11  # passed through, no respawn
        assert supervisor.restarts == 0
        assert "reason=non-retryable" in events.getvalue()
    finally:
        lock.release()


def test_clean_drain_on_stop(tmp_path):
    events = io.StringIO()
    supervisor = Supervisor(_config(tmp_path), out=events).start()
    assert supervisor.wait_ready(60.0)
    supervisor.request_stop()
    assert supervisor.join(30.0) == 0
    log = events.getvalue()
    assert "event=drain" in log
    assert "event=stopped code=0" in log
    assert "event=drain-timeout" not in log
