"""Tests for the query model (Definitions 3-5) and stats accounting."""

from __future__ import annotations

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.errors import InvalidParameterError
from repro.core.query import (
    IntervalPDRQuery,
    QueryResult,
    QueryStats,
    SnapshotPDRQuery,
    relative_to_absolute_threshold,
)
from repro.core.regions import RegionSet
from repro.core.geometry import Rect


class TestRelativeThreshold:
    def test_paper_formula(self):
        # Section 7: rho = N * varrho / 10^6 for the 1000x1000 domain.
        assert relative_to_absolute_threshold(2.0, 100_000, 1e6) == pytest.approx(0.2)

    def test_paper_range_for_ch500k(self):
        # "rho varying between 0.5 to 2.5 for dataset CH500k" (varrho 1..5).
        lo = relative_to_absolute_threshold(1.0, 500_000, 1e6)
        hi = relative_to_absolute_threshold(5.0, 500_000, 1e6)
        assert lo == pytest.approx(0.5)
        assert hi == pytest.approx(2.5)

    def test_invalid_inputs(self):
        with pytest.raises(InvalidParameterError):
            relative_to_absolute_threshold(-1.0, 10, 1.0)
        with pytest.raises(InvalidParameterError):
            relative_to_absolute_threshold(1.0, -10, 1.0)
        with pytest.raises(InvalidParameterError):
            relative_to_absolute_threshold(1.0, 10, 0.0)

    @given(st.floats(0, 100), st.integers(0, 10**7), st.floats(0.1, 1e7))
    def test_scales_linearly_in_n(self, varrho, n, area):
        rho = relative_to_absolute_threshold(varrho, n, area)
        rho2 = relative_to_absolute_threshold(varrho, 2 * n, area)
        assert rho2 == pytest.approx(2 * rho)


class TestSnapshotQuery:
    def test_min_count(self):
        q = SnapshotPDRQuery(rho=0.5, l=10.0, qt=3)
        assert q.min_count == pytest.approx(50.0)

    def test_validation(self):
        with pytest.raises(InvalidParameterError):
            SnapshotPDRQuery(rho=-0.1, l=1.0, qt=0)
        with pytest.raises(InvalidParameterError):
            SnapshotPDRQuery(rho=1.0, l=0.0, qt=0)
        with pytest.raises(InvalidParameterError):
            SnapshotPDRQuery(rho=float("nan"), l=1.0, qt=0)
        with pytest.raises(InvalidParameterError):
            SnapshotPDRQuery(rho=float("inf"), l=1.0, qt=0)

    def test_zero_rho_allowed(self):
        assert SnapshotPDRQuery(rho=0.0, l=1.0, qt=0).min_count == 0.0

    def test_with_timestamp(self):
        q = SnapshotPDRQuery(rho=1.0, l=2.0, qt=0).with_timestamp(9)
        assert q.qt == 9
        assert q.rho == 1.0

    def test_frozen(self):
        q = SnapshotPDRQuery(rho=1.0, l=2.0, qt=0)
        with pytest.raises(AttributeError):
            q.rho = 2.0


class TestIntervalQuery:
    def test_snapshots_cover_interval(self):
        q = IntervalPDRQuery(rho=1.0, l=2.0, qt1=3, qt2=6)
        snaps = list(q.snapshots())
        assert [s.qt for s in snaps] == [3, 4, 5, 6]
        assert all(s.rho == 1.0 and s.l == 2.0 for s in snaps)

    def test_single_timestamp(self):
        q = IntervalPDRQuery(rho=1.0, l=2.0, qt1=5, qt2=5)
        assert len(list(q.snapshots())) == 1

    def test_inverted_interval_rejected(self):
        with pytest.raises(InvalidParameterError):
            IntervalPDRQuery(rho=1.0, l=2.0, qt1=6, qt2=3)

    def test_scalar_validation_delegated(self):
        with pytest.raises(InvalidParameterError):
            IntervalPDRQuery(rho=-1.0, l=2.0, qt1=0, qt2=1)


class TestQueryStats:
    def test_total_seconds(self):
        s = QueryStats(cpu_seconds=0.5, io_seconds=2.0)
        assert s.total_seconds == pytest.approx(2.5)

    def test_merge_adds_counters(self):
        a = QueryStats(method="fr", cpu_seconds=1.0, io_count=5, io_seconds=0.05,
                       accepted_cells=2, candidate_cells=3, objects_examined=7)
        b = QueryStats(cpu_seconds=0.5, io_count=1, io_seconds=0.01,
                       rejected_cells=4, bnb_nodes=11)
        m = a.merged_with(b)
        assert m.method == "fr"
        assert m.cpu_seconds == pytest.approx(1.5)
        assert m.io_count == 6
        assert m.io_seconds == pytest.approx(0.06)
        assert m.accepted_cells == 2
        assert m.rejected_cells == 4
        assert m.candidate_cells == 3
        assert m.objects_examined == 7
        assert m.bnb_nodes == 11

    def test_merge_extra_dict(self):
        a = QueryStats(extra={"x": 1.0})
        b = QueryStats(extra={"x": 2.0, "y": 3.0})
        m = a.merged_with(b)
        assert m.extra == {"x": 3.0, "y": 3.0}

    def test_merge_does_not_mutate_operands(self):
        a = QueryStats(cpu_seconds=1.0, extra={"x": 1.0})
        b = QueryStats(cpu_seconds=2.0)
        a.merged_with(b)
        assert a.cpu_seconds == 1.0
        assert a.extra == {"x": 1.0}


class TestQueryResult:
    def test_area_and_iter(self):
        regions = RegionSet([Rect(0, 0, 2, 3)])
        result = QueryResult(regions=regions, stats=QueryStats())
        assert result.area() == pytest.approx(6.0)
        assert list(result) == [Rect(0, 0, 2, 3)]
