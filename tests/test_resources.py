"""Resource-exhaustion robustness: budgets, retention, fsyncgate, read-only.

Covers the disk-budget layer end to end:

* **fsyncgate**: a failed write/flush/fsync permanently poisons that WAL
  descriptor — the regression test pins that no ``os.fsync`` is ever
  issued on a poisoned descriptor again (``UpdateLog.fsync_calls``
  freezes at the poisoning) and that healing opens a *fresh* segment
  whose LSN chain stays contiguous through recovery;
* **watermarks**: crossing the soft limit checkpoints-then-prunes,
  crossing the hard limit flips the server to read-only degraded mode
  (queries serve, writes refuse with ``retry_after``) and restoring the
  budget plus a probe flips it back;
* **retention** (property-tested): no prunable segment ever carries a
  record above the newest durable checkpoint's LSN or any replica's
  acknowledged LSN;
* **replica healing**: a replica rejoining from beyond the pruned
  horizon bootstraps from the checkpoint image and converges bit-exact;
* **fd hygiene**: checkpoint rotation and recover cycles do not leak
  WAL descriptors;
* the ``read_only`` wire error carries ``retry_after`` through the TCP
  front door, and a couple of seeded ``chaos --resources`` campaigns
  run green in-process.
"""

from __future__ import annotations

import os
import shutil
import tempfile

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from tests.conftest import small_system_config
from repro import PDRServer
from repro.core.errors import ReadOnlyError, RecoveryError, WALWriteError
from repro.reliability.faults import FaultInjector
from repro.reliability.recovery import records_from_lsn
from repro.reliability.replication import ReplicationConfig, ReplicationGroup
from repro.reliability.resources import (
    prunable_wal_segments,
    prune_retention,
    state_dir_usage,
)
from repro.reliability.validation import ReliabilityConfig, ResourceConfig


def make_server(state_dir, faults=None, resources=None, fsync=True,
                checkpoint_interval=0):
    return PDRServer(
        small_system_config(),
        expected_objects=64,
        reliability=ReliabilityConfig(
            state_dir=str(state_dir),
            checkpoint_interval=checkpoint_interval,
            fsync=fsync,
            faults=faults,
            resources=resources,
        ),
    )


def seed_reports(server, n, seed=5, start_oid=0):
    rng = np.random.default_rng(seed)
    for i in range(n):
        server.report(
            start_oid + i,
            float(rng.uniform(5.0, 95.0)), float(rng.uniform(5.0, 95.0)),
            float(rng.uniform(-1.0, 1.0)), float(rng.uniform(-1.0, 1.0)),
        )


# ----------------------------------------------------------------------
# fsyncgate: poisoned descriptors are never fsynced again
# ----------------------------------------------------------------------
def test_fsync_failure_poisons_descriptor_and_never_retries(tmp_path):
    faults = FaultInjector()
    server = make_server(tmp_path / "state", faults=faults,
                        resources=ResourceConfig())
    seed_reports(server, 4)
    manager = server._manager
    wal = manager._wal
    assert wal.fsync_calls >= 4

    faults.inject_enospc("wal_fsync")
    with pytest.raises(WALWriteError):
        server.report(50, 10.0, 10.0, 0.1, 0.1)

    # the descriptor is poisoned and the fsync counter froze: the failed
    # fsync never reached os.fsync, and nothing ever will on this fd
    assert wal.poisoned
    frozen = wal.fsync_calls
    assert server.read_only
    assert manager.wal_poisoned

    # refused writes don't touch the poisoned descriptor either
    with pytest.raises(ReadOnlyError) as exc_info:
        server.report(51, 11.0, 11.0, 0.1, 0.1)
    assert exc_info.value.retry_after == pytest.approx(0.5)
    assert wal.fsync_calls == frozen

    # queries still serve while degraded
    assert server.query("fr", qt=0, varrho=2.0) is not None

    # the probe heals by opening a FRESH segment (seq bumped), never by
    # retrying the poisoned descriptor
    old_seq = manager.seq
    assert server.probe_resources()
    assert not server.read_only
    assert manager.seq == old_seq + 1
    assert manager._wal is not wal

    seed_reports(server, 3, start_oid=60)
    assert wal.fsync_calls == frozen  # old fd untouched, forever
    assert manager._wal.fsync_calls >= 3


def test_fresh_segment_preserves_lsn_chain_through_recovery(tmp_path):
    faults = FaultInjector()
    server = make_server(tmp_path / "state", faults=faults,
                        resources=ResourceConfig())
    seed_reports(server, 5)
    faults.inject_enospc("wal_fsync")
    with pytest.raises(WALWriteError):
        server.report(50, 10.0, 10.0, 0.1, 0.1)
    assert server.probe_resources()
    seed_reports(server, 5, start_oid=60)
    live_lsn = server._manager.lsn

    # the replay cursor walks both segments without a gap
    lsns = [int(r["lsn"]) for r in records_from_lsn(str(tmp_path / "state"), 0)]
    assert lsns == list(range(1, live_lsn + 1))

    server._manager.close()
    recovered = PDRServer.recover(str(tmp_path / "state"))
    assert recovered._manager.lsn == live_lsn
    assert sorted(m.oid for m in recovered.table.motions()) == \
        sorted(m.oid for m in server.table.motions())
    recovered._manager.close()


def test_short_write_tears_line_then_heals_cleanly(tmp_path):
    faults = FaultInjector()
    server = make_server(tmp_path / "state", faults=faults,
                        resources=ResourceConfig())
    seed_reports(server, 4)
    acked = server._manager.lsn
    wal_path = server._manager._wal.path

    faults.inject_short_write("wal_write", fraction=0.5)
    with pytest.raises(WALWriteError):
        server.report(50, 10.0, 10.0, 0.1, 0.1)
    with open(wal_path, "rb") as fh:
        assert not fh.read().endswith(b"\n")  # a genuinely torn tail

    assert server.probe_resources()
    seed_reports(server, 2, start_oid=60)

    server._manager.close()
    recovered = PDRServer.recover(str(tmp_path / "state"))
    assert recovered._manager.lsn == acked + 2  # torn record gone, acked intact
    recovered._manager.close()


# ----------------------------------------------------------------------
# watermarks
# ----------------------------------------------------------------------
def test_hard_watermark_enters_readonly_and_budget_restore_exits(tmp_path):
    resources = ResourceConfig()
    server = make_server(tmp_path / "state", resources=resources)
    seed_reports(server, 4)

    resources.hard_limit_bytes = 1
    # the crossing write itself succeeds — the budget is evaluated after
    # the append — and flips the server to degraded mode
    server.report(50, 10.0, 10.0, 0.1, 0.1)
    assert server.read_only
    with pytest.raises(ReadOnlyError):
        server.report(51, 11.0, 11.0, 0.1, 0.1)
    assert server.query("pa", qt=0, varrho=2.0) is not None

    report = server.reliability_report()
    assert report["read_only"]
    assert report["resources"]["budget_state"] == "hard"

    resources.hard_limit_bytes = None
    assert server.probe_resources()
    assert not server.read_only
    server.report(52, 12.0, 12.0, 0.1, 0.1)
    events = server._manager.resources.events
    assert events["readonly_enter"] == 1
    assert events["readonly_exit"] == 1
    server._manager.close()


def test_soft_watermark_checkpoints_then_prunes(tmp_path):
    resources = ResourceConfig()
    server = make_server(tmp_path / "state", resources=resources, fsync=False)
    seed_reports(server, 20)
    state_dir = str(tmp_path / "state")

    usage_before, _ = state_dir_usage(state_dir)
    resources.soft_limit_bytes = max(1, usage_before // 2)
    server.report(50, 10.0, 10.0, 0.1, 0.1)

    assert not server.read_only  # soft pressure degrades nothing
    events = server._manager.resources.events
    assert events["soft_watermark"] >= 1
    assert events["prune"] >= 1
    names = os.listdir(state_dir)
    assert any(n.startswith("ckpt-") for n in names)
    # the pre-checkpoint segment was released; only the live one remains
    assert [n for n in names if n.startswith("wal-")] == \
        [f"wal-{server._manager.seq:08d}.jsonl"]

    server._manager.close()
    recovered = PDRServer.recover(state_dir)
    assert recovered._manager.lsn == 21
    recovered._manager.close()


def test_memory_watermark_sheds_query_caches(tmp_path):
    resources = ResourceConfig(memory_limit_bytes=1)
    server = make_server(tmp_path / "state", resources=resources, fsync=False)
    seed_reports(server, 10)
    server.histogram.prefix_sums(0)  # warm the prefix-sum cache
    assert server.histogram.cache_memory_bytes() > 0

    server.report(50, 10.0, 10.0, 0.1, 0.1)  # the check() after the write sheds
    assert server.histogram.cache_memory_bytes() == 0
    assert server._manager.resources.events["memory_shed"] >= 1
    # correctness untouched: the caches rebuild on demand
    assert server.query("fr", qt=0, varrho=2.0) is not None
    server._manager.close()


# ----------------------------------------------------------------------
# retention
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def rotated_state_dir():
    """A state dir with three checkpoints and four WAL segments."""
    tmp = tempfile.mkdtemp(prefix="retention-")
    state_dir = os.path.join(tmp, "state")
    server = make_server(state_dir, fsync=False)
    for batch in range(3):
        seed_reports(server, 6, seed=batch, start_oid=batch * 10)
        server._manager.checkpoint(server)
    seed_reports(server, 4, seed=9, start_oid=40)
    manager = server._manager
    yield state_dir, manager.seq, manager.lsn
    manager.close()
    shutil.rmtree(tmp, ignore_errors=True)


@settings(max_examples=40, deadline=None)
@given(replica_lsns=st.lists(st.integers(min_value=0, max_value=30),
                             min_size=0, max_size=4))
def test_retention_never_prunes_a_needed_segment(rotated_state_dir, replica_lsns):
    """The retention property from the paper's ops appendix: a released
    segment carries no record beyond the newest durable checkpoint's LSN
    nor beyond any replica's acknowledged LSN, and is never the segment
    currently open for appends."""
    from repro.reliability.resources import (
        _newest_verified_checkpoint,
        _segment_last_lsn,
    )
    from repro.reliability.recovery import _wal_path

    state_dir, current_seq, _lsn = rotated_state_dir
    ckpt_seq, ckpt_lsn = _newest_verified_checkpoint(state_dir)
    floor = min([ckpt_lsn] + list(replica_lsns))

    for seq in prunable_wal_segments(state_dir, list(replica_lsns),
                                     current_seq=current_seq):
        assert seq != current_seq
        assert seq < ckpt_seq
        last = _segment_last_lsn(_wal_path(state_dir, seq))
        assert last is None or last <= floor


def test_prune_retention_is_recoverable_afterwards(rotated_state_dir):
    state_dir, current_seq, live_lsn = rotated_state_dir
    scratch = tempfile.mkdtemp(prefix="retention-copy-")
    try:
        copy = os.path.join(scratch, "state")
        shutil.copytree(state_dir, copy)
        removed, freed = prune_retention(copy, [], current_seq=current_seq)
        assert removed > 0 and freed > 0
        recovered = PDRServer.recover(copy)
        assert recovered._manager.lsn == live_lsn
        recovered._manager.close()
    finally:
        shutil.rmtree(scratch, ignore_errors=True)


# ----------------------------------------------------------------------
# replica healing across the pruned horizon
# ----------------------------------------------------------------------
def make_group(state_dir, resources=None, n_replicas=1):
    primary = make_server(state_dir, resources=resources, fsync=False)
    return ReplicationGroup(
        primary, n_replicas=n_replicas,
        config=ReplicationConfig(staleness_bound=1_000_000),
    )


def _bit_exact(replica, primary):
    return np.array_equal(
        replica.server.histogram.state_arrays()["counts"],
        primary.histogram.state_arrays()["counts"],
    ) and np.array_equal(
        replica.server.pa.state_arrays()["coeffs"],
        primary.pa.state_arrays()["coeffs"],
    )


def test_replica_rejoin_after_retention_prune_bootstraps_from_image(tmp_path):
    resources = ResourceConfig()
    group = make_group(tmp_path / "state", resources=resources, n_replicas=2)
    state_dir = str(tmp_path / "state")
    for i in range(8):
        group.report(i, 10.0 + i, 20.0 + i, 0.2, -0.1)

    # one replica dies; the survivors keep acking, the budget prunes
    group.replicas.pop()
    for i in range(8, 14):
        group.report(i, 10.0 + i, 20.0 + i, 0.2, -0.1)
    manager = group.primary._manager
    manager.checkpoint(group.primary)
    manager.resources.prune()
    for i in range(14, 16):  # post-prune tail in the live segment
        group.report(i, 10.0 + i, 20.0 + i, 0.2, -0.1)

    # the horizon the dead replica would need is gone
    with pytest.raises(RecoveryError):
        list(records_from_lsn(state_dir, 0))

    # a fresh replica still converges — image bootstrap, then the tail
    rejoined = group.add_replica("rejoined")
    group.catch_up_replicas()
    assert rejoined.lag(group.acked_lsn) == 0
    assert _bit_exact(rejoined, group.primary)
    group.close()


def test_lagging_replica_heals_when_replacement_segment_is_empty(tmp_path):
    """Regression: when pruning leaves only an *empty* post-checkpoint
    segment, ``records_from_lsn`` sees no records at all — no gap to trip
    over — so catch-up used to return silently with the replica still
    lagging.  The group now falls back to the checkpoint image."""
    group = make_group(tmp_path / "state", n_replicas=1)
    state_dir = str(tmp_path / "state")
    replica = group.replicas[0]
    replica.link.partitioned = True
    for i in range(6):
        group.report(i, 10.0 + i, 20.0 + i, 0.2, -0.1)
    manager = group.primary._manager
    manager.checkpoint(group.primary)  # rotates; the new segment is empty
    prune_retention(state_dir, None, current_seq=manager.seq)
    assert replica.lag(group.acked_lsn) > 0

    replica.link.partitioned = False
    group.catch_up_replicas()
    assert replica.lag(group.acked_lsn) == 0
    assert _bit_exact(replica, group.primary)
    group.close()


def test_retention_holds_the_line_for_live_lagging_replicas(tmp_path):
    """A *live* (merely partitioned) replica pins retention: the
    checkpoint-time pruner may not drop the tail it is still owed."""
    resources = ResourceConfig()
    group = make_group(tmp_path / "state", resources=resources, n_replicas=1)
    state_dir = str(tmp_path / "state")
    replica = group.replicas[0]
    for i in range(4):
        group.report(i, 10.0 + i, 20.0 + i, 0.2, -0.1)
    replica.link.partitioned = True
    for i in range(4, 8):
        group.report(i, 10.0 + i, 20.0 + i, 0.2, -0.1)
    manager = group.primary._manager
    manager.checkpoint(group.primary)
    manager.resources.prune()

    # every record past the replica's cursor is still replayable
    tail = [int(r["lsn"]) for r in
            records_from_lsn(state_dir, replica.applied_lsn)]
    assert tail == list(range(replica.applied_lsn + 1, group.acked_lsn + 1))
    group.close()


# ----------------------------------------------------------------------
# fd hygiene
# ----------------------------------------------------------------------
def _open_fds() -> int:
    return len(os.listdir("/proc/self/fd"))


@pytest.mark.skipif(not os.path.isdir("/proc/self/fd"),
                    reason="needs /proc fd accounting")
def test_checkpoint_rotation_and_recover_cycles_leak_no_fds(tmp_path):
    server = make_server(tmp_path / "state", fsync=False)
    seed_reports(server, 4)
    baseline = _open_fds()
    for _ in range(8):
        server._manager.checkpoint(server)  # rotates the WAL each time
    assert _open_fds() <= baseline

    server._manager.close()
    state_dir = str(tmp_path / "state")
    baseline = _open_fds()
    for i in range(8):
        recovered = PDRServer.recover(state_dir)
        recovered.report(100 + i, 15.0, 15.0, 0.1, 0.1)
        recovered._manager.close()
    assert _open_fds() <= baseline


# ----------------------------------------------------------------------
# the wire: read_only frames carry retry_after
# ----------------------------------------------------------------------
def test_read_only_error_over_tcp_carries_retry_after(tmp_path):
    from repro.serving.client import (
        ClientConfig,
        ResilientClient,
        RetriesExhaustedError,
    )
    from repro.serving.server import ServerThread, ServingConfig

    resources = ResourceConfig()
    group = make_group(tmp_path / "state", resources=resources, n_replicas=1)
    thread = ServerThread(group, ServingConfig()).start()
    try:
        config = ClientConfig(max_attempts=3, backoff_base=0.01,
                              backoff_cap=0.02, retry_after_cap=0.05)
        with ResilientClient([thread.address], config=config) as client:
            client.report(0, 10.0, 10.0, 0.1, 0.1)
            resources.hard_limit_bytes = 1
            thread.call(group.report, 1, 11.0, 11.0, 0.1, 0.1)  # crossing write
            assert thread.call(lambda: group.primary.read_only)

            assert client.health()["read_only"] is True
            with pytest.raises(RetriesExhaustedError):
                client.report(2, 12.0, 12.0, 0.1, 0.1)
            assert client.stats["error_read_only"] >= 1
            assert client.sheds_missing_retry_after == 0  # the invariant

            # queries keep serving while degraded
            assert client.query("fr", qt_offset=0, varrho=2.0)["ok"]

            resources.hard_limit_bytes = None
            client.status()  # the status op probes degraded backends
            assert client.health()["read_only"] is False
            assert client.report(3, 13.0, 13.0, 0.1, 0.1)["ok"]
    finally:
        thread.stop()
        group.close()


# ----------------------------------------------------------------------
# seeded campaigns, in-process
# ----------------------------------------------------------------------
@pytest.mark.parametrize("seed", [1, 3])
def test_resource_chaos_seeds_run_green(tmp_path, seed):
    from repro.reliability.chaos import ChaosConfig, ChaosScheduler

    result = ChaosScheduler(
        ChaosConfig(seed=seed, events=60, resources=True, shrink=False),
        str(tmp_path / "chaos"),
    ).run()
    assert result.ok, result.failure
    assert result.stats.get("refused_writes", 0) >= 0
