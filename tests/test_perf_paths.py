"""Equivalence suites for the PR-4 fast paths.

Three families of properties:

* the vectorised 1-D sweep and X-driver are **bit-identical** to the
  reference event-loop implementations (same floats, ``==`` on every bound);
* a :meth:`PDRServer.report_batch` wave leaves every maintained structure —
  histogram counters, PA coefficients, tree contents, WAL — in exactly the
  state the same reports produce sequentially, and recovery from the
  group-committed WAL reproduces it bit-for-bit;
* the timestamp-keyed caches return the same arrays as cold computation and
  invalidate on every mutation epoch.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import PDRServer
from repro.core.geometry import Rect
from repro.histogram.density_histogram import DensityHistogram
from repro.reliability.recovery import UpdateLog
from repro.reliability.validation import ReliabilityConfig
from repro.sweep.plane_sweep import (
    dense_segments_1d,
    dense_segments_1d_reference,
    refine_cell,
    refine_cell_reference,
)

from .conftest import small_system_config

finite = st.floats(
    min_value=-50.0, max_value=150.0, allow_nan=False, allow_infinity=False
)


# ----------------------------------------------------------------------
# vectorised sweep == reference sweep, bit for bit
# ----------------------------------------------------------------------
@settings(max_examples=200, deadline=None)
@given(
    coords=st.lists(finite, min_size=0, max_size=40),
    half=st.floats(min_value=0.05, max_value=20.0),
    bounds=st.tuples(finite, finite),
    min_count=st.floats(min_value=0.0, max_value=12.0),
    duplicate=st.booleans(),
)
def test_dense_segments_matches_reference(coords, half, bounds, min_count, duplicate):
    if duplicate and len(coords) >= 2:
        coords[1] = coords[0]  # exercise exact event ties
    lo, hi = min(bounds), max(bounds)
    arr = np.asarray(coords, dtype=float)
    fast = dense_segments_1d(arr, half, lo, hi, min_count)
    ref = dense_segments_1d_reference(arr, half, lo, hi, min_count)
    assert fast == ref  # tuple float equality: bit-identical bounds


@settings(max_examples=150, deadline=None)
@given(
    points=st.lists(st.tuples(finite, finite), min_size=0, max_size=50),
    l=st.floats(min_value=0.5, max_value=30.0),
    min_count=st.floats(min_value=0.0, max_value=8.0),
    duplicate=st.booleans(),
)
def test_refine_cell_matches_reference(points, l, min_count, duplicate):
    if duplicate and len(points) >= 2:
        points[1] = points[0]
    cell = Rect(10.0, 5.0, 90.0, 85.0)
    fast = refine_cell(points, cell, l, min_count)
    ref = refine_cell_reference(points, cell, l, min_count)
    assert list(fast) == list(ref)


def test_sweep_edge_cases_match_reference():
    for coords, half, lo, hi, mc in [
        ([], 1.0, 0.0, 10.0, 0.0),
        ([], 1.0, 0.0, 10.0, 1.0),
        ([5.0], 1.0, 10.0, 10.0, 0.0),  # empty span
        ([5.0, 5.0, 5.0], 2.0, 0.0, 10.0, 3.0),  # all ties
        ([0.0, 10.0], 5.0, 0.0, 10.0, 1.0),  # events at the boundary
    ]:
        arr = np.asarray(coords, dtype=float)
        assert dense_segments_1d(arr, half, lo, hi, mc) == (
            dense_segments_1d_reference(arr, half, lo, hi, mc)
        )


# ----------------------------------------------------------------------
# batched ingest == sequential ingest, structure by structure
# ----------------------------------------------------------------------
def _wave(rng, n, oid_base=0, domain=100.0):
    return [
        (
            oid_base + i,
            float(rng.uniform(1.0, domain - 1.0)),
            float(rng.uniform(1.0, domain - 1.0)),
            float(rng.uniform(-0.5, 0.5)),
            float(rng.uniform(-0.5, 0.5)),
        )
        for i in range(n)
    ]


def _drive(server, waves, batched):
    for advance, wave in waves:
        if advance:
            server.advance_to(server.tnow + advance)
        if batched:
            server.report_batch(wave)
        else:
            for report in wave:
                server.report(*report)


def _tree_contents(server):
    return sorted(
        (m.oid, m.t_ref, m.x, m.y, m.vx, m.vy) for m in server.tree.all_motions()
    )


@pytest.fixture
def report_waves():
    rng = np.random.default_rng(42)
    first = _wave(rng, 40)
    rereport = _wave(rng, 40)
    # A duplicate oid inside one batch forces the wave-splitting path.
    rereport.append((7, 50.0, 50.0, 0.1, 0.1))
    later = _wave(rng, 30, oid_base=20)
    return [(0, first), (0, rereport), (2, later)]


def test_report_batch_states_bit_identical(report_waves):
    sequential = PDRServer(small_system_config(), expected_objects=200)
    batched = PDRServer(small_system_config(), expected_objects=200)
    _drive(sequential, report_waves, batched=False)
    _drive(batched, report_waves, batched=True)

    # Histogram counters are integers: exact equality, slot labels included.
    assert np.array_equal(
        sequential.histogram._counts, batched.histogram._counts
    )
    assert np.array_equal(
        sequential.histogram._slot_time, batched.histogram._slot_time
    )
    # PA coefficients are floats: the batched path preserves the exact
    # per-report interleaving, so equality is bitwise, not approximate.
    assert np.array_equal(sequential.pa._coeffs, batched.pa._coeffs)
    assert np.array_equal(sequential.pa._slot_time, batched.pa._slot_time)
    # The tree's contract is its contents plus structural invariants; the
    # Z-order bulk insert may shape the tree differently.
    batched.tree.validate()
    assert _tree_contents(sequential) == _tree_contents(batched)
    # Queries agree as answer sets.
    for method in ("fr", "pa", "dh-optimistic", "bruteforce"):
        a = sequential.query(method, qt=sequential.tnow + 1, rho=0.05)
        b = batched.query(method, qt=batched.tnow + 1, rho=0.05)
        assert set(a.regions) == set(b.regions)


def test_report_batch_results_align_with_input(report_waves):
    server = PDRServer(small_system_config(), expected_objects=200)
    wave = report_waves[0][1]
    results = server.report_batch(wave)
    assert len(results) == len(wave)
    for (oid, x, y, _vx, _vy), motion in zip(wave, results):
        assert motion is not None
        assert (motion.oid, motion.x, motion.y) == (oid, x, y)


def test_report_batch_rejects_like_sequential():
    config = small_system_config()
    sequential = PDRServer(config, expected_objects=50)
    batched = PDRServer(config, expected_objects=50)
    wave = [
        (0, 10.0, 10.0, 0.0, 0.0),
        (1, -5.0, 10.0, 0.0, 0.0),  # out of domain: rejected
        (2, 20.0, 20.0, float("nan"), 0.0),  # malformed: rejected
        (3, 30.0, 30.0, 0.1, 0.1),
    ]
    seq_results = [sequential.report(*r) for r in wave]
    batch_results = batched.report_batch(wave)
    assert [m is None for m in seq_results] == [m is None for m in batch_results]
    assert sequential.dead_letters.total == batched.dead_letters.total == 2
    assert dict(sequential.dead_letters.counts) == dict(batched.dead_letters.counts)
    assert np.array_equal(sequential.histogram._counts, batched.histogram._counts)


def test_report_batch_wal_recovery_bit_identical(tmp_path, report_waves):
    state_dir = str(tmp_path / "state")
    live = PDRServer(
        small_system_config(),
        expected_objects=200,
        reliability=ReliabilityConfig(state_dir=state_dir),
    )
    _drive(live, report_waves, batched=True)
    live.close()

    recovered = PDRServer.recover(state_dir)
    try:
        assert recovered.tnow == live.tnow
        assert len(recovered.table) == len(live.table)
        assert np.array_equal(recovered.histogram._counts, live.histogram._counts)
        # Replay applies records sequentially; the batched live path must
        # therefore be bit-identical to sequential application for the
        # recovered floats to match exactly.
        assert np.array_equal(recovered.pa._coeffs, live.pa._coeffs)
        assert _tree_contents(recovered) == _tree_contents(live)
    finally:
        recovered.close()


def test_update_log_group_commit_bytes_identical(tmp_path):
    records = [
        {"op": "report", "t": 0, "oid": i, "x": 1.5 * i, "y": 2.0, "vx": 0.1, "vy": -0.2, "lsn": i + 1}
        for i in range(5)
    ]
    one_path = str(tmp_path / "one.jsonl")
    many_path = str(tmp_path / "many.jsonl")
    one = UpdateLog(one_path, fsync=False)
    for record in records:
        one.append(dict(record))
    one.close()
    many = UpdateLog(many_path, fsync=False)
    many.append_many([dict(r) for r in records])
    many.close()
    with open(one_path, "rb") as fh:
        sequential_bytes = fh.read()
    with open(many_path, "rb") as fh:
        batched_bytes = fh.read()
    assert sequential_bytes == batched_bytes
    assert UpdateLog.read_records(many_path) == records


def test_timed_listener_forwards_batches():
    """The server wraps histogram/PA in TimedListener; if the wrapper fell
    back to per-object forwarding, batching would silently vanish and the
    per-update counts would drift from the sequential path."""

    class Recorder:
        def __init__(self):
            self.calls = []

        def on_report_batch(self, pairs):
            self.calls.append(("report_batch", len(pairs)))

        def on_insert(self, update):  # pragma: no cover - must not be hit
            raise AssertionError("batch was unbatched")

        def on_insert_batch(self, updates):
            self.calls.append(("insert_batch", len(updates)))

        def on_delete_batch(self, updates):
            self.calls.append(("delete_batch", len(updates)))

        def on_delete(self, update):  # pragma: no cover - must not be hit
            raise AssertionError("batch was unbatched")

        def on_advance(self, tnow):
            pass

    from repro.metrics.instrument import TimedListener
    from repro.motion.model import Motion
    from repro.motion.updates import DeleteUpdate, InsertUpdate

    inner = Recorder()
    timed = TimedListener(inner)
    inserts = [InsertUpdate(0, Motion(i, 0, 1.0 * i, 2.0, 0.0, 0.0)) for i in range(4)]
    deletes = [DeleteUpdate(1, u.motion) for u in inserts[:2]]
    timed.on_insert_batch(inserts)
    timed.on_delete_batch(deletes)
    timed.on_report_batch([(deletes[0], inserts[0]), (None, inserts[1])])
    assert inner.calls == [
        ("insert_batch", 4),
        ("delete_batch", 2),
        ("report_batch", 2),
    ]
    # One delete + two inserts in the report wave, plus 4 + 2 before it.
    assert timed.timer.updates == 4 + 2 + 3


# ----------------------------------------------------------------------
# timestamp-keyed caches
# ----------------------------------------------------------------------
def test_prefix_cache_hits_and_invalidates(populated_server):
    server = populated_server
    hist = server.histogram
    qt = server.tnow + 1
    cold = hist.prefix_sums(qt).copy()
    misses0 = hist.cache_misses
    again = hist.prefix_sums(qt)
    assert hist.cache_misses == misses0  # pure hit
    assert np.array_equal(cold, again)
    # Any counter mutation invalidates via the epoch counter.
    server.report(9999, 50.0, 50.0, 0.0, 0.0)
    refreshed = hist.prefix_sums(qt)
    assert hist.cache_misses == misses0 + 1
    expected = np.zeros((hist.m + 1, hist.m + 1), dtype=np.int64)
    expected[1:, 1:] = (
        hist.counts_at(qt).astype(np.int64).cumsum(axis=0).cumsum(axis=1)
    )
    assert np.array_equal(refreshed, expected)


def test_block_sums_at_matches_cold_computation(populated_server):
    hist = populated_server.histogram
    qt = populated_server.tnow
    for radius in (0, 1, 2):
        cached = hist.block_sums_at(qt, radius)
        cold = DensityHistogram.block_sums(hist.prefix_sums(qt), radius)
        assert np.array_equal(cached, cold)
    hits0 = hist.cache_hits
    hist.block_sums_at(qt, 1)
    assert hist.cache_hits == hits0 + 1


def test_cache_invalidates_on_advance(populated_server):
    server = populated_server
    hist = server.histogram
    qt = server.tnow + 2
    hist.block_sums_at(qt, 1)
    server.advance_to(server.tnow + 1)
    misses0 = hist.cache_misses
    hist.block_sums_at(qt, 1)
    assert hist.cache_misses > misses0  # advance wiped the cache


def test_fr_stage_timings_and_cache_counters(populated_server):
    server = populated_server
    qt = server.tnow + 1
    first = server.query("fr", qt=qt, rho=0.05)
    extra = first.stats.extra
    for key in ("filter_seconds", "fetch_seconds", "sweep_seconds"):
        assert key in extra and extra[key] >= 0.0
    assert extra["cache_misses"] >= 1.0  # cold caches
    second = server.query("fr", qt=qt, rho=0.05)
    assert second.stats.extra["cache_hits"] >= 1.0  # warm caches
    assert set(first.regions) == set(second.regions)
    report = server.reliability_report()
    assert report["query_cache_hits"] >= 1
    assert report["histogram_cache"]["hits"] >= 1
    assert set(report["query_stage_seconds"]) == {"filter", "fetch", "sweep"}


def test_monitor_events_carry_cache_hits(populated_server):
    from repro.methods.monitor import PDRMonitor

    server = populated_server
    monitor = PDRMonitor(server, offset=1, method="fr", rho=0.05)
    first = monitor.poll()
    second = monitor.poll()  # no update in between: the filter hits cache
    assert first.cache_misses >= 1
    assert second.cache_hits >= 1
