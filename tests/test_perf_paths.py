"""Equivalence suites for the fast paths.

Families of properties:

* the vectorised 1-D sweep and X-driver are **bit-identical** to the
  reference event-loop implementations (same floats, ``==`` on every bound);
* the band-fused refinement kernel, the batched tree traversal and the
  process-pool fan-out are bit-identical to the sequential per-cell path
  (and to each other across worker counts and chunkings);
* a :meth:`PDRServer.report_batch` wave leaves every maintained structure —
  histogram counters, PA coefficients, tree contents, WAL — in exactly the
  state the same reports produce sequentially, and recovery from the
  group-committed WAL reproduces it bit-for-bit;
* the timestamp-keyed caches return the same arrays as cold computation and
  invalidate on every mutation epoch.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import PDRServer
from repro.core.geometry import Rect
from repro.histogram.density_histogram import DensityHistogram
from repro.index.tree import TPRTree
from repro.methods.fr import FRMethod
from repro.motion.model import Motion
from repro.reliability.recovery import UpdateLog
from repro.reliability.validation import ReliabilityConfig
from repro.sweep.band_sweep import BandTask, merge_band_results, refine_bands
from repro.sweep.plane_sweep import (
    dense_segments_1d,
    dense_segments_1d_reference,
    refine_cell,
    refine_cell_reference,
)

from .conftest import populate_clustered, small_system_config

finite = st.floats(
    min_value=-50.0, max_value=150.0, allow_nan=False, allow_infinity=False
)


# ----------------------------------------------------------------------
# vectorised sweep == reference sweep, bit for bit
# ----------------------------------------------------------------------
@settings(max_examples=200, deadline=None)
@given(
    coords=st.lists(finite, min_size=0, max_size=40),
    half=st.floats(min_value=0.05, max_value=20.0),
    bounds=st.tuples(finite, finite),
    min_count=st.floats(min_value=0.0, max_value=12.0),
    duplicate=st.booleans(),
)
def test_dense_segments_matches_reference(coords, half, bounds, min_count, duplicate):
    if duplicate and len(coords) >= 2:
        coords[1] = coords[0]  # exercise exact event ties
    lo, hi = min(bounds), max(bounds)
    arr = np.asarray(coords, dtype=float)
    fast = dense_segments_1d(arr, half, lo, hi, min_count)
    ref = dense_segments_1d_reference(arr, half, lo, hi, min_count)
    assert fast == ref  # tuple float equality: bit-identical bounds


@settings(max_examples=150, deadline=None)
@given(
    points=st.lists(st.tuples(finite, finite), min_size=0, max_size=50),
    l=st.floats(min_value=0.5, max_value=30.0),
    min_count=st.floats(min_value=0.0, max_value=8.0),
    duplicate=st.booleans(),
)
def test_refine_cell_matches_reference(points, l, min_count, duplicate):
    if duplicate and len(points) >= 2:
        points[1] = points[0]
    cell = Rect(10.0, 5.0, 90.0, 85.0)
    fast = refine_cell(points, cell, l, min_count)
    ref = refine_cell_reference(points, cell, l, min_count)
    assert list(fast) == list(ref)


def test_sweep_edge_cases_match_reference():
    for coords, half, lo, hi, mc in [
        ([], 1.0, 0.0, 10.0, 0.0),
        ([], 1.0, 0.0, 10.0, 1.0),
        ([5.0], 1.0, 10.0, 10.0, 0.0),  # empty span
        ([5.0, 5.0, 5.0], 2.0, 0.0, 10.0, 3.0),  # all ties
        ([0.0, 10.0], 5.0, 0.0, 10.0, 1.0),  # events at the boundary
    ]:
        arr = np.asarray(coords, dtype=float)
        assert dense_segments_1d(arr, half, lo, hi, mc) == (
            dense_segments_1d_reference(arr, half, lo, hi, mc)
        )


# ----------------------------------------------------------------------
# band-fused refinement == per-cell refinement, bit for bit
# ----------------------------------------------------------------------
def _random_band_case(seed):
    """Random fused bands plus the sequential per-strip oracle's answer."""
    rng = np.random.default_rng(seed)
    n = int(rng.integers(0, 60))
    l = float(rng.uniform(0.5, 8.0))
    half = l / 2.0
    rho = float(rng.choice([0.0, 0.05, 0.2, 1.0, 3.0]))
    min_count = rho * l * l
    xs = rng.uniform(-5, 25, n)
    ys = rng.uniform(-5, 25, n)
    tasks = []
    oracle = []
    for _ in range(int(rng.integers(1, 4))):
        y1 = float(rng.uniform(0, 18))
        y2 = y1 + float(rng.uniform(0.5, 4.0))
        n_strips = int(rng.integers(1, 4))
        cuts = np.sort(rng.uniform(0, 20, 2 * n_strips))
        sx1 = cuts[0::2]
        sx2 = np.maximum(cuts[1::2], cuts[0::2] + 0.1)
        # one fused fetch per band: everything inside the expanded band rect
        fy1, fy2 = y1 - half, y2 + half
        keep = (
            (xs >= sx1.min() - half)
            & (xs <= sx2.max() + half)
            & (ys >= fy1)
            & (ys <= fy2)
        )
        tasks.append(BandTask(y1, y2, sx1, sx2, xs[keep], ys[keep]))
        # the oracle fetches and refines strip by strip, like the old path
        for x1, x2 in zip(sx1, sx2):
            strip = (xs >= x1 - half) & (xs <= x2 + half) & (ys >= fy1) & (ys <= fy2)
            positions = list(zip(xs[strip], ys[strip]))
            for r in refine_cell(positions, Rect(x1, y1, x2, y2), l, min_count):
                oracle.append((r.x1, r.y1, r.x2, r.y2))
    return tasks, l, min_count, oracle


@settings(max_examples=80, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_band_kernel_matches_per_strip_oracle(seed):
    tasks, l, min_count, oracle = _random_band_case(seed)
    result = refine_bands(tasks, l, min_count)
    assert [tuple(row) for row in result.bounds] == oracle


@settings(max_examples=40, deadline=None)
@given(seed=st.integers(0, 10_000), n_chunks=st.integers(1, 3))
def test_band_kernel_chunking_is_invariant(seed, n_chunks):
    """Splitting tasks across pool chunks never changes a single float."""
    tasks, l, min_count, _ = _random_band_case(seed)
    whole = refine_bands(tasks, l, min_count)
    sizes = [
        len(tasks) // n_chunks + (1 if i < len(tasks) % n_chunks else 0)
        for i in range(n_chunks)
    ]
    chunks, offsets, start = [], [], 0
    for size in sizes:
        chunks.append(refine_bands(tasks[start : start + size], l, min_count))
        offsets.append(start)
        start += size
    merged = merge_band_results(chunks, offsets)
    assert np.array_equal(merged.bounds, whole.bounds)
    assert np.array_equal(merged.task_of_rect, whole.task_of_rect)
    assert np.array_equal(merged.max_active, whole.max_active)


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_batch_traversal_matches_sequential(seed):
    """One shared traversal answers every rect exactly like N traversals."""
    rng = np.random.default_rng(seed)
    tree = TPRTree(horizon=10.0)
    for oid in range(int(rng.integers(1, 150))):
        tree.insert(
            Motion(
                oid, 0,
                float(rng.uniform(0, 100)), float(rng.uniform(0, 100)),
                float(rng.uniform(-2, 2)), float(rng.uniform(-2, 2)),
            )
        )
    rects, qts = [], []
    for _ in range(int(rng.integers(1, 10))):
        x1, y1 = rng.uniform(0, 90, 2)
        rects.append(
            Rect(float(x1), float(y1),
                 float(x1 + rng.uniform(1, 30)), float(y1 + rng.uniform(1, 30)))
        )
        qts.append(float(rng.integers(0, 5)))
    motions = tree.range_query_batch(rects, np.asarray(qts))
    positions = tree.range_positions_batch(rects, np.asarray(qts))
    for rect, qt, batch_m, (px, py) in zip(rects, qts, motions, positions):
        sequential = tree.range_query(rect, qt)
        assert [m.oid for m in sequential] == [m.oid for m in batch_m]
        sx = np.array([m.position_at(qt)[0] for m in sequential])
        sy = np.array([m.position_at(qt)[1] for m in sequential])
        assert np.array_equal(sx, px) and np.array_equal(sy, py)


@pytest.fixture(scope="module")
def fr_world():
    server = PDRServer(small_system_config(), expected_objects=200)
    populate_clustered(server, 150, seed=5)
    return server


def _region_tuples(result):
    return [(r.x1, r.y1, r.x2, r.y2) for r in result.regions]


def test_banded_fr_matches_per_cell_fr(fr_world):
    server = fr_world
    qt = server.tnow + 1
    banded = FRMethod(server.histogram, server.tree, batch_candidates=True)
    with pytest.deprecated_call():
        per_cell = FRMethod(server.histogram, server.tree, batch_candidates=False)
    for varrho in (0.8, 1.2, 2.0, 3.5):
        query = server.make_query(qt=qt, varrho=varrho)
        a = banded.query(query)
        b = per_cell.query(query)
        # Same region *union*, exactly: the raster in _combine_area breaks
        # on the rect edges themselves, so zero symmetric difference means
        # identical point sets — the decompositions legitimately differ
        # (a dense run crossing a cell seam is one fused rect, not two).
        assert a.regions.symmetric_difference_area(b.regions) == 0.0
        assert a.regions.area() == pytest.approx(b.regions.area(), rel=0, abs=1e-9)
        assert a.stats.accepted_cells == b.stats.accepted_cells
        assert a.stats.candidate_cells == b.stats.candidate_cells


def test_refine_worker_counts_are_invariant(fr_world):
    server = fr_world
    qt = server.tnow + 1
    query = server.make_query(qt=qt, varrho=1.2)
    baseline = FRMethod(server.histogram, server.tree, refine_workers=0).query(query)
    assert baseline.stats.extra["refine_workers"] == 0.0
    for workers in (1, 2):
        result = FRMethod(
            server.histogram, server.tree, refine_workers=workers
        ).query(query)
        assert _region_tuples(result) == _region_tuples(baseline)
        assert result.stats.extra["refine_workers"] == float(workers)


def test_fused_rows_dedup_adjacent_cells(fr_world):
    """Adjacent candidate cells fuse into one strip: one fetch per band row,
    no duplicated or overlapping refinement output at the seam."""
    server = fr_world
    query = server.make_query(qt=server.tnow + 1, varrho=1.2)
    result = FRMethod(server.histogram, server.tree).query(query)
    extra = result.stats.extra
    assert extra["refine_bands"] + extra["refine_bands_skipped"] < (
        result.stats.candidate_cells
    ), "fusion must fetch fewer bands than there are candidate cells"
    rects = _region_tuples(result)
    assert len(rects) == len(set(rects)), "fused strips must not emit duplicates"
    # the answer is disjoint by construction; area() takes the O(n) path
    assert result.regions.area() == pytest.approx(
        sum((x2 - x1) * (y2 - y1) for x1, y1, x2, y2 in rects)
    )


def test_rho_monotonic_band_skip_reuses_prior_sweeps(fr_world):
    """Raising varrho on the same snapshot skips bands whose cached max
    active count already rules them out — without changing the answer."""
    server = fr_world
    qt = server.tnow + 1
    fr = FRMethod(server.histogram, server.tree)
    skipped = 0.0
    for varrho in (1.2, 1.5, 2.0, 3.0):
        query = server.make_query(qt=qt, varrho=varrho)
        result = fr.query(query)
        skipped += result.stats.extra["refine_bands_skipped"]
        fresh = FRMethod(server.histogram, server.tree).query(query)
        assert _region_tuples(result) == _region_tuples(fresh)
    assert skipped > 0, "ascending varrho must hit the band-skip cache"


# ----------------------------------------------------------------------
# batched ingest == sequential ingest, structure by structure
# ----------------------------------------------------------------------
def _wave(rng, n, oid_base=0, domain=100.0):
    return [
        (
            oid_base + i,
            float(rng.uniform(1.0, domain - 1.0)),
            float(rng.uniform(1.0, domain - 1.0)),
            float(rng.uniform(-0.5, 0.5)),
            float(rng.uniform(-0.5, 0.5)),
        )
        for i in range(n)
    ]


def _drive(server, waves, batched):
    for advance, wave in waves:
        if advance:
            server.advance_to(server.tnow + advance)
        if batched:
            server.report_batch(wave)
        else:
            for report in wave:
                server.report(*report)


def _tree_contents(server):
    return sorted(
        (m.oid, m.t_ref, m.x, m.y, m.vx, m.vy) for m in server.tree.all_motions()
    )


@pytest.fixture
def report_waves():
    rng = np.random.default_rng(42)
    first = _wave(rng, 40)
    rereport = _wave(rng, 40)
    # A duplicate oid inside one batch forces the wave-splitting path.
    rereport.append((7, 50.0, 50.0, 0.1, 0.1))
    later = _wave(rng, 30, oid_base=20)
    return [(0, first), (0, rereport), (2, later)]


def test_report_batch_states_bit_identical(report_waves):
    sequential = PDRServer(small_system_config(), expected_objects=200)
    batched = PDRServer(small_system_config(), expected_objects=200)
    _drive(sequential, report_waves, batched=False)
    _drive(batched, report_waves, batched=True)

    # Histogram counters are integers: exact equality, slot labels included.
    assert np.array_equal(
        sequential.histogram._counts, batched.histogram._counts
    )
    assert np.array_equal(
        sequential.histogram._slot_time, batched.histogram._slot_time
    )
    # PA coefficients are floats: the batched path preserves the exact
    # per-report interleaving, so equality is bitwise, not approximate.
    assert np.array_equal(sequential.pa._coeffs, batched.pa._coeffs)
    assert np.array_equal(sequential.pa._slot_time, batched.pa._slot_time)
    # The tree's contract is its contents plus structural invariants; the
    # Z-order bulk insert may shape the tree differently.
    batched.tree.validate()
    assert _tree_contents(sequential) == _tree_contents(batched)
    # Queries agree as answer sets.
    for method in ("fr", "pa", "dh-optimistic", "bruteforce"):
        a = sequential.query(method, qt=sequential.tnow + 1, rho=0.05)
        b = batched.query(method, qt=batched.tnow + 1, rho=0.05)
        assert set(a.regions) == set(b.regions)


def test_report_batch_results_align_with_input(report_waves):
    server = PDRServer(small_system_config(), expected_objects=200)
    wave = report_waves[0][1]
    results = server.report_batch(wave)
    assert len(results) == len(wave)
    for (oid, x, y, _vx, _vy), motion in zip(wave, results):
        assert motion is not None
        assert (motion.oid, motion.x, motion.y) == (oid, x, y)


def test_report_batch_rejects_like_sequential():
    config = small_system_config()
    sequential = PDRServer(config, expected_objects=50)
    batched = PDRServer(config, expected_objects=50)
    wave = [
        (0, 10.0, 10.0, 0.0, 0.0),
        (1, -5.0, 10.0, 0.0, 0.0),  # out of domain: rejected
        (2, 20.0, 20.0, float("nan"), 0.0),  # malformed: rejected
        (3, 30.0, 30.0, 0.1, 0.1),
    ]
    seq_results = [sequential.report(*r) for r in wave]
    batch_results = batched.report_batch(wave)
    assert [m is None for m in seq_results] == [m is None for m in batch_results]
    assert sequential.dead_letters.total == batched.dead_letters.total == 2
    assert dict(sequential.dead_letters.counts) == dict(batched.dead_letters.counts)
    assert np.array_equal(sequential.histogram._counts, batched.histogram._counts)


def test_report_batch_wal_recovery_bit_identical(tmp_path, report_waves):
    state_dir = str(tmp_path / "state")
    live = PDRServer(
        small_system_config(),
        expected_objects=200,
        reliability=ReliabilityConfig(state_dir=state_dir),
    )
    _drive(live, report_waves, batched=True)
    live.close()

    recovered = PDRServer.recover(state_dir)
    try:
        assert recovered.tnow == live.tnow
        assert len(recovered.table) == len(live.table)
        assert np.array_equal(recovered.histogram._counts, live.histogram._counts)
        # Replay applies records sequentially; the batched live path must
        # therefore be bit-identical to sequential application for the
        # recovered floats to match exactly.
        assert np.array_equal(recovered.pa._coeffs, live.pa._coeffs)
        assert _tree_contents(recovered) == _tree_contents(live)
    finally:
        recovered.close()


def test_update_log_group_commit_bytes_identical(tmp_path):
    records = [
        {"op": "report", "t": 0, "oid": i, "x": 1.5 * i, "y": 2.0, "vx": 0.1, "vy": -0.2, "lsn": i + 1}
        for i in range(5)
    ]
    one_path = str(tmp_path / "one.jsonl")
    many_path = str(tmp_path / "many.jsonl")
    one = UpdateLog(one_path, fsync=False)
    for record in records:
        one.append(dict(record))
    one.close()
    many = UpdateLog(many_path, fsync=False)
    many.append_many([dict(r) for r in records])
    many.close()
    with open(one_path, "rb") as fh:
        sequential_bytes = fh.read()
    with open(many_path, "rb") as fh:
        batched_bytes = fh.read()
    assert sequential_bytes == batched_bytes
    assert UpdateLog.read_records(many_path) == records


def test_timed_listener_forwards_batches():
    """The server wraps histogram/PA in TimedListener; if the wrapper fell
    back to per-object forwarding, batching would silently vanish and the
    per-update counts would drift from the sequential path."""

    class Recorder:
        def __init__(self):
            self.calls = []

        def on_report_batch(self, pairs):
            self.calls.append(("report_batch", len(pairs)))

        def on_insert(self, update):  # pragma: no cover - must not be hit
            raise AssertionError("batch was unbatched")

        def on_insert_batch(self, updates):
            self.calls.append(("insert_batch", len(updates)))

        def on_delete_batch(self, updates):
            self.calls.append(("delete_batch", len(updates)))

        def on_delete(self, update):  # pragma: no cover - must not be hit
            raise AssertionError("batch was unbatched")

        def on_advance(self, tnow):
            pass

    from repro.metrics.instrument import TimedListener
    from repro.motion.model import Motion
    from repro.motion.updates import DeleteUpdate, InsertUpdate

    inner = Recorder()
    timed = TimedListener(inner)
    inserts = [InsertUpdate(0, Motion(i, 0, 1.0 * i, 2.0, 0.0, 0.0)) for i in range(4)]
    deletes = [DeleteUpdate(1, u.motion) for u in inserts[:2]]
    timed.on_insert_batch(inserts)
    timed.on_delete_batch(deletes)
    timed.on_report_batch([(deletes[0], inserts[0]), (None, inserts[1])])
    assert inner.calls == [
        ("insert_batch", 4),
        ("delete_batch", 2),
        ("report_batch", 2),
    ]
    # One delete + two inserts in the report wave, plus 4 + 2 before it.
    assert timed.timer.updates == 4 + 2 + 3


# ----------------------------------------------------------------------
# timestamp-keyed caches
# ----------------------------------------------------------------------
def test_prefix_cache_hits_and_invalidates(populated_server):
    server = populated_server
    hist = server.histogram
    qt = server.tnow + 1
    cold = hist.prefix_sums(qt).copy()
    misses0 = hist.cache_misses
    again = hist.prefix_sums(qt)
    assert hist.cache_misses == misses0  # pure hit
    assert np.array_equal(cold, again)
    # Any counter mutation invalidates via the epoch counter.
    server.report(9999, 50.0, 50.0, 0.0, 0.0)
    refreshed = hist.prefix_sums(qt)
    assert hist.cache_misses == misses0 + 1
    expected = np.zeros((hist.m + 1, hist.m + 1), dtype=np.int64)
    expected[1:, 1:] = (
        hist.counts_at(qt).astype(np.int64).cumsum(axis=0).cumsum(axis=1)
    )
    assert np.array_equal(refreshed, expected)


def test_block_sums_at_matches_cold_computation(populated_server):
    hist = populated_server.histogram
    qt = populated_server.tnow
    for radius in (0, 1, 2):
        cached = hist.block_sums_at(qt, radius)
        cold = DensityHistogram.block_sums(hist.prefix_sums(qt), radius)
        assert np.array_equal(cached, cold)
    hits0 = hist.cache_hits
    hist.block_sums_at(qt, 1)
    assert hist.cache_hits == hits0 + 1


def test_cache_invalidates_on_advance(populated_server):
    server = populated_server
    hist = server.histogram
    qt = server.tnow + 2
    hist.block_sums_at(qt, 1)
    server.advance_to(server.tnow + 1)
    misses0 = hist.cache_misses
    hist.block_sums_at(qt, 1)
    assert hist.cache_misses > misses0  # advance wiped the cache


def test_fr_stage_timings_and_cache_counters(populated_server):
    server = populated_server
    qt = server.tnow + 1
    first = server.query("fr", qt=qt, rho=0.05)
    extra = first.stats.extra
    stage_keys = (
        "filter_seconds",
        "fuse_seconds",
        "fetch_seconds",
        "sweep_seconds",
        "merge_seconds",
    )
    for key in stage_keys:
        assert key in extra and extra[key] >= 0.0
    # every recorded span is also accumulated: stages nest inside the query
    assert sum(extra[key] for key in stage_keys) <= first.stats.cpu_seconds
    assert extra["cache_misses"] >= 1.0  # cold caches
    second = server.query("fr", qt=qt, rho=0.05)
    assert second.stats.extra["cache_hits"] >= 1.0  # warm caches
    assert set(first.regions) == set(second.regions)
    report = server.reliability_report()
    assert report["query_cache_hits"] >= 1
    assert report["histogram_cache"]["hits"] >= 1
    assert set(report["query_stage_seconds"]) == {
        "filter",
        "fuse",
        "fetch",
        "sweep",
        "merge",
    }


def test_monitor_events_carry_cache_hits(populated_server):
    from repro.methods.monitor import PDRMonitor

    server = populated_server
    monitor = PDRMonitor(server, offset=1, method="fr", rho=0.05)
    first = monitor.poll()
    second = monitor.poll()  # no update in between: the filter hits cache
    assert first.cache_misses >= 1
    assert second.cache_hits >= 1
