"""Crashpoints and the state-dir lockfile.

The crashpoint contract: disarmed it is free, armed it dies at exactly
the configured hit of exactly the configured site — after landing the
torn payload prefix a mid-write power cut would have left.  Tests
observe the kill in-process by arming a ``kill`` callable that raises
instead of SIGKILLing the test runner; the real-SIGKILL path is covered
by the supervisor and kill-matrix tests, which spawn real children.

The lockfile contract: one *process* owns a state dir at a time
(``fcntl.flock`` — the kernel releases it when the holder dies, so
there are no stale locks), while one process may open the same dir many
times (crash-*simulation* tests recover a dir their injured manager
still holds open).
"""

from __future__ import annotations

import io
import os
import subprocess
import sys

import pytest

from tests.conftest import small_system_config
from repro import PDRServer
from repro.core.errors import StateDirLockedError
from repro.reliability import crashpoints as cp
from repro.reliability.lockfile import (
    LOCK_FILENAME,
    acquire_state_dir_lock,
)
from repro.reliability.validation import ReliabilityConfig

SRC_ROOT = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"
)


class _Killed(Exception):
    """Stand-in for SIGKILL so the test process survives the site."""


def _raise_killed() -> None:
    raise _Killed()


@pytest.fixture(autouse=True)
def _always_disarmed():
    cp.disarm()
    yield
    cp.disarm()


# ----------------------------------------------------------------------
# crashpoint arming semantics
# ----------------------------------------------------------------------

def test_disarmed_crashpoint_is_a_noop():
    for site in cp.CRASH_SITES:
        cp.crashpoint(site)  # must simply return


def test_armed_site_fires_after_hit_budget_and_other_sites_never():
    cp.arm("wal.append", after=2, kill=_raise_killed)
    assert cp.armed_site() == "wal.append"
    cp.crashpoint("wal_fsync")  # different site: untouched
    cp.crashpoint("wal.append")  # hit 1: skipped
    cp.crashpoint("wal.append")  # hit 2: skipped
    with pytest.raises(_Killed):
        cp.crashpoint("wal.append")  # hit 3: dies
    cp.disarm()
    cp.crashpoint("wal.append")  # disarmed again: noop
    assert cp.armed_site() is None


def test_torn_write_lands_payload_prefix_before_dying():
    fh = io.BytesIO()
    cp.arm("wal_write", torn=0.5, kill=_raise_killed)
    with pytest.raises(_Killed):
        cp.crashpoint("wal_write", payload=b"0123456789", fh=fh)
    assert fh.getvalue() == b"01234"


def test_torn_fraction_is_validated():
    with pytest.raises(ValueError):
        cp.arm("wal_write", torn=1.0)
    with pytest.raises(ValueError):
        cp.arm("wal_write", torn=-0.1)


def test_arm_from_env_parses_and_rejects_garbage():
    assert cp.arm_from_env({}) is None
    assert cp.armed_site() is None
    site = cp.arm_from_env({
        cp.ENV_SITE: "checkpoint.manifest",
        cp.ENV_AFTER: "3",
        cp.ENV_TORN: "",
    })
    assert site == "checkpoint.manifest"
    assert cp.armed_site() == "checkpoint.manifest"
    with pytest.raises(ValueError):
        cp.arm_from_env({cp.ENV_SITE: "wal.append", cp.ENV_AFTER: "soon"})


def test_wal_append_site_is_wired_into_the_real_append_path(tmp_path):
    server = PDRServer(
        small_system_config(),
        expected_objects=8,
        reliability=ReliabilityConfig(state_dir=str(tmp_path / "state")),
    )
    try:
        cp.arm("wal.append", kill=_raise_killed)
        with pytest.raises(_Killed):
            server.report(0, 10.0, 10.0, 0.1, 0.1)
    finally:
        cp.disarm()
        server.close()


# ----------------------------------------------------------------------
# state-dir lockfile
# ----------------------------------------------------------------------

def test_lock_is_reentrant_within_a_process(tmp_path):
    state_dir = str(tmp_path / "state")
    os.makedirs(state_dir)
    first = acquire_state_dir_lock(state_dir)
    second = acquire_state_dir_lock(state_dir)  # same process: legal
    first.release()
    # still held through the second handle; the LOCK file itself is
    # never unlinked (unlink would race a fresh acquirer's open)
    assert os.path.exists(os.path.join(state_dir, LOCK_FILENAME))
    second.release()
    assert os.path.exists(os.path.join(state_dir, LOCK_FILENAME))


_CONTENDER = """
import sys
from repro.core.errors import StateDirLockedError
from repro.reliability.lockfile import acquire_state_dir_lock
try:
    lock = acquire_state_dir_lock(sys.argv[1])
except StateDirLockedError as exc:
    print(f"holder={exc.holder.get('pid')}")
    sys.exit(42)
lock.release()
print("acquired")
"""


def _contend(state_dir: str) -> subprocess.CompletedProcess:
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC_ROOT + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.run(
        [sys.executable, "-c", _CONTENDER, state_dir],
        capture_output=True, text=True, timeout=60, env=env,
    )


def test_lock_refuses_a_second_process_and_names_the_holder(tmp_path):
    state_dir = str(tmp_path / "state")
    os.makedirs(state_dir)
    lock = acquire_state_dir_lock(state_dir)
    try:
        result = _contend(state_dir)
        assert result.returncode == 42, result.stderr
        assert f"holder={os.getpid()}" in result.stdout
    finally:
        lock.release()
    # the kernel released nothing early: only our release frees it
    result = _contend(state_dir)
    assert result.returncode == 0, result.stderr
    assert "acquired" in result.stdout


def test_serve_refuses_a_locked_state_dir_with_exit_11(tmp_path):
    state_dir = str(tmp_path / "state")
    os.makedirs(state_dir)
    lock = acquire_state_dir_lock(state_dir)
    try:
        env = dict(os.environ)
        env["PYTHONPATH"] = SRC_ROOT + os.pathsep + env.get("PYTHONPATH", "")
        result = subprocess.run(
            [sys.executable, "-m", "repro", "serve",
             "--state-dir", state_dir, "--port", "0",
             "--objects", "8", "--replicas", "0"],
            capture_output=True, text=True, timeout=120, env=env,
        )
        assert result.returncode == 11, (result.stdout, result.stderr)
        assert "locked" in result.stderr.lower()
    finally:
        lock.release()
