"""Tests for interval-query lifting and the exception hierarchy."""

from __future__ import annotations

import pytest

from repro.core import errors
from repro.core.geometry import Rect
from repro.core.query import (
    IntervalPDRQuery,
    QueryResult,
    QueryStats,
    SnapshotPDRQuery,
)
from repro.core.regions import RegionSet
from repro.methods.interval import evaluate_interval


def fake_evaluator(answers):
    """Snapshot evaluator returning canned regions per timestamp."""

    def evaluate(query: SnapshotPDRQuery) -> QueryResult:
        regions = answers.get(query.qt, RegionSet())
        stats = QueryStats(method="fake", cpu_seconds=0.5, io_count=2, io_seconds=0.02)
        return QueryResult(regions=regions, stats=stats, query=query)

    return evaluate


class TestEvaluateInterval:
    def test_union_of_snapshots(self):
        answers = {
            0: RegionSet([Rect(0, 0, 1, 1)]),
            1: RegionSet([Rect(5, 5, 6, 6)]),
            2: RegionSet(),
        }
        query = IntervalPDRQuery(rho=1.0, l=2.0, qt1=0, qt2=2)
        result = evaluate_interval(fake_evaluator(answers), query)
        assert result.regions.area() == pytest.approx(2.0)
        assert result.regions.contains_point(0.5, 0.5)
        assert result.regions.contains_point(5.5, 5.5)

    def test_stats_summed(self):
        query = IntervalPDRQuery(rho=1.0, l=2.0, qt1=3, qt2=5)
        result = evaluate_interval(fake_evaluator({}), query)
        assert result.stats.cpu_seconds == pytest.approx(1.5)
        assert result.stats.io_count == 6
        assert result.stats.method == "fake-interval"

    def test_single_snapshot_interval(self):
        answers = {7: RegionSet([Rect(0, 0, 2, 2)])}
        query = IntervalPDRQuery(rho=1.0, l=2.0, qt1=7, qt2=7)
        result = evaluate_interval(fake_evaluator(answers), query)
        assert result.regions.area() == pytest.approx(4.0)

    def test_overlapping_snapshot_answers_not_double_counted(self):
        answers = {
            0: RegionSet([Rect(0, 0, 2, 2)]),
            1: RegionSet([Rect(1, 1, 3, 3)]),
        }
        query = IntervalPDRQuery(rho=1.0, l=2.0, qt1=0, qt2=1)
        result = evaluate_interval(fake_evaluator(answers), query)
        assert result.regions.area() == pytest.approx(7.0)


class TestErrorHierarchy:
    def test_all_derive_from_repro_error(self):
        for cls in (
            errors.InvalidParameterError,
            errors.GeometryError,
            errors.QueryError,
            errors.HorizonError,
            errors.IndexError_,
            errors.StorageError,
            errors.DatagenError,
        ):
            assert issubclass(cls, errors.ReproError)

    def test_value_error_compat(self):
        # Parameter/geometry errors double as ValueError for idiomatic
        # except-clauses in client code.
        assert issubclass(errors.InvalidParameterError, ValueError)
        assert issubclass(errors.GeometryError, ValueError)

    def test_horizon_is_query_error(self):
        assert issubclass(errors.HorizonError, errors.QueryError)

    def test_catching_base_class(self):
        with pytest.raises(errors.ReproError):
            raise errors.HorizonError("out of window")

    def test_index_error_name_does_not_shadow_builtin(self):
        assert errors.IndexError_ is not IndexError
        assert not issubclass(errors.IndexError_, IndexError)
