"""Tests for selectivity estimation and top-k density peaks."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.chebyshev.cheb1d import chebyshev_values, plain_integrals
from repro.core.errors import InvalidParameterError
from repro.core.geometry import Rect
from repro.methods.estimate import (
    estimate_count_dh,
    estimate_count_pa,
    exact_count,
)
from repro.methods.topk import DensityPeak, top_k_peaks
from repro.core.system import PDRServer
from tests.conftest import populate_clustered, small_system_config


@pytest.fixture
def server():
    srv = PDRServer(small_system_config(), expected_objects=200)
    populate_clustered(srv, 160, seed=2)
    return srv


class TestPlainIntegrals:
    @given(st.integers(0, 8), st.floats(-1, 1), st.floats(-1, 1))
    @settings(max_examples=60)
    def test_matches_numeric(self, n, a, b):
        z1, z2 = min(a, b), max(a, b)
        xs = np.linspace(z1, z2, 4001)
        numeric = np.trapezoid(chebyshev_values(n, xs)[n], xs) if z2 > z1 else 0.0
        closed = plain_integrals(n, z1, z2)[n]
        assert closed == pytest.approx(numeric, abs=1e-6)

    def test_full_interval_known_values(self):
        vals = plain_integrals(4, -1.0, 1.0)
        # ∫T_0 = 2, ∫T_1 = 0, ∫T_2 = -2/3, ∫T_3 = 0, ∫T_4 = -2/15.
        assert vals[0] == pytest.approx(2.0)
        assert vals[1] == pytest.approx(0.0)
        assert vals[2] == pytest.approx(-2.0 / 3.0)
        assert vals[3] == pytest.approx(0.0)
        assert vals[4] == pytest.approx(-2.0 / 15.0)

    def test_additive(self):
        whole = plain_integrals(5, -0.7, 0.9)
        left = plain_integrals(5, -0.7, 0.1)
        right = plain_integrals(5, 0.1, 0.9)
        assert np.allclose(whole, left + right, atol=1e-12)


class TestCountEstimators:
    def test_exact_count_reference(self, server):
        rect = Rect(20.0, 20.0, 45.0, 45.0)
        count = exact_count(server.table, rect, 0, server.config.horizon)
        brute = sum(
            1 for _o, x, y in server.table.positions_at(0) if rect.contains_point(x, y)
        )
        assert count == brute

    def test_dh_estimate_whole_domain(self, server):
        rect = server.config.domain
        estimate = estimate_count_dh(server.histogram, rect, 0)
        exact = exact_count(server.table, rect, 0, server.config.horizon)
        assert estimate == pytest.approx(exact, abs=1e-6)

    def test_pa_estimate_whole_domain(self, server):
        """Total surface mass equals the object count (each object adds 1)."""
        rect = server.config.domain
        estimate = estimate_count_pa(server.pa, rect, 0)
        exact = exact_count(server.table, rect, 0, server.config.horizon)
        # Mass near the border leaks outside the domain (clipped squares),
        # so the estimate sits slightly below the exact count.
        assert estimate == pytest.approx(exact, rel=0.1)

    def test_estimators_track_cluster(self, server):
        hot = Rect(20.0, 20.0, 40.0, 40.0)  # contains cluster 1
        cold = Rect(2.0, 70.0, 22.0, 90.0)
        horizon = server.config.horizon
        for estimator in (
            lambda r: estimate_count_dh(server.histogram, r, 0),
            lambda r: estimate_count_pa(server.pa, r, 0),
        ):
            hot_exact = exact_count(server.table, hot, 0, horizon)
            cold_exact = exact_count(server.table, cold, 0, horizon)
            assert hot_exact > cold_exact  # sanity of the fixture
            assert estimator(hot) > estimator(cold)

    def test_dh_estimate_quality(self, server):
        gen = np.random.default_rng(3)
        horizon = server.config.horizon
        errors = []
        for _ in range(10):
            x, y = gen.uniform(5, 60, size=2)
            rect = Rect(x, y, x + 30, y + 30)
            exact = exact_count(server.table, rect, 0, horizon)
            est = estimate_count_dh(server.histogram, rect, 0)
            errors.append(abs(est - exact))
        assert float(np.mean(errors)) < 8.0  # of ~160 objects

    def test_empty_range(self, server):
        outside = Rect(200.0, 200.0, 210.0, 210.0)
        assert estimate_count_dh(server.histogram, outside, 0) == 0.0
        assert estimate_count_pa(server.pa, outside, 0) == 0.0


class TestTopKPeaks:
    def test_validation(self, server):
        with pytest.raises(InvalidParameterError):
            top_k_peaks(server.pa, 0, k=0)
        with pytest.raises(InvalidParameterError):
            top_k_peaks(server.pa, 0, k=1, md=1)

    def test_finds_the_two_clusters(self, server):
        peaks = top_k_peaks(server.pa, 0, k=2, separation=20.0)
        assert len(peaks) == 2
        centers = [(30.0, 30.0), (70.0, 65.0)]
        for peak in peaks:
            assert any(
                np.hypot(peak.x - cx, peak.y - cy) < 12.0 for cx, cy in centers
            )
        # The two peaks describe different clusters.
        assert np.hypot(peaks[0].x - peaks[1].x, peaks[0].y - peaks[1].y) >= 20.0

    def test_peaks_sorted_by_density(self, server):
        peaks = top_k_peaks(server.pa, 0, k=3, separation=15.0)
        densities = [p.density for p in peaks]
        assert densities == sorted(densities, reverse=True)

    def test_top1_matches_dense_grid_argmax(self, server):
        """The best-first search agrees with an exhaustive grid argmax."""
        peak = top_k_peaks(server.pa, 0, k=1, md=128)[0]
        surface = server.pa.surface_at(0)
        values = surface.density_grid(128)
        assert peak.density == pytest.approx(float(values.max()), rel=0.05)

    def test_peak_density_close_to_true_density(self, server):
        from repro.core.geometry import point_in_square

        peak = top_k_peaks(server.pa, 0, k=1)[0]
        l = server.config.l
        count = sum(
            1
            for _o, x, y in server.table.positions_at(0)
            if point_in_square(x, y, peak.x, peak.y, l)
        )
        true_density = count / (l * l)
        assert peak.density == pytest.approx(true_density, rel=0.4)

    def test_empty_surface_returns_flat_peaks(self, small_config):
        srv = PDRServer(small_config, expected_objects=10)
        peaks = top_k_peaks(srv.pa, 0, k=2, separation=5.0)
        assert all(p.density == pytest.approx(0.0, abs=1e-9) for p in peaks)
