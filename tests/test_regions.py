"""Unit and property tests for the RegionSet area algebra."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.geometry import Rect
from repro.core.regions import RegionSet


def _int_rect(x1, y1, w, h):
    return Rect(float(x1), float(y1), float(x1 + w), float(y1 + h))


# Small random rectangle sets on an integer grid so brute-force cell counting
# is exact and fast.
rect_strategy = st.builds(
    _int_rect,
    st.integers(0, 15),
    st.integers(0, 15),
    st.integers(1, 6),
    st.integers(1, 6),
)
rect_sets = st.lists(rect_strategy, max_size=8).map(RegionSet)


def brute_area(region: RegionSet, op_region: RegionSet = None, op: str = "a") -> float:
    """Reference area via unit-cell counting on the integer grid."""
    grid_a = np.zeros((25, 25), dtype=bool)
    grid_b = np.zeros((25, 25), dtype=bool)
    for r in region:
        grid_a[int(r.x1) : int(r.x2), int(r.y1) : int(r.y2)] = True
    if op_region is not None:
        for r in op_region:
            grid_b[int(r.x1) : int(r.x2), int(r.y1) : int(r.y2)] = True
    combos = {
        "a": grid_a,
        "and": grid_a & grid_b,
        "or": grid_a | grid_b,
        "diff": grid_a & ~grid_b,
        "xor": grid_a ^ grid_b,
    }
    return float(combos[op].sum())


class TestConstruction:
    def test_empty(self):
        rs = RegionSet()
        assert rs.is_empty()
        assert len(rs) == 0
        assert not rs
        assert rs.area() == 0.0
        assert rs.bounding_box() is None

    def test_drops_empty_rects(self):
        rs = RegionSet([Rect(0, 0, 0, 5), Rect(1, 1, 2, 2)])
        assert len(rs) == 1

    def test_iteration_and_bool(self):
        rs = RegionSet([Rect(0, 0, 1, 1)])
        assert bool(rs)
        assert list(rs) == [Rect(0, 0, 1, 1)]


class TestMeasures:
    def test_single_rect_area(self):
        assert RegionSet([Rect(0, 0, 3, 4)]).area() == pytest.approx(12.0)

    def test_disjoint_union_area(self):
        rs = RegionSet([Rect(0, 0, 1, 1), Rect(5, 5, 7, 6)])
        assert rs.area() == pytest.approx(3.0)

    def test_overlap_counted_once(self):
        rs = RegionSet([Rect(0, 0, 2, 2), Rect(1, 1, 3, 3)])
        assert rs.area() == pytest.approx(7.0)

    def test_duplicate_rects_counted_once(self):
        rs = RegionSet([Rect(0, 0, 2, 2), Rect(0, 0, 2, 2)])
        assert rs.area() == pytest.approx(4.0)

    def test_intersection_area(self):
        a = RegionSet([Rect(0, 0, 4, 4)])
        b = RegionSet([Rect(2, 2, 6, 6)])
        assert a.intersection_area(b) == pytest.approx(4.0)

    def test_difference_area(self):
        a = RegionSet([Rect(0, 0, 4, 4)])
        b = RegionSet([Rect(2, 0, 6, 4)])
        assert a.difference_area(b) == pytest.approx(8.0)
        assert b.difference_area(a) == pytest.approx(8.0)

    def test_symmetric_difference(self):
        a = RegionSet([Rect(0, 0, 4, 4)])
        b = RegionSet([Rect(2, 0, 6, 4)])
        assert a.symmetric_difference_area(b) == pytest.approx(16.0)

    def test_union_area(self):
        a = RegionSet([Rect(0, 0, 4, 4)])
        b = RegionSet([Rect(2, 0, 6, 4)])
        assert a.union_area(b) == pytest.approx(24.0)

    def test_equals_region(self):
        a = RegionSet([Rect(0, 0, 2, 2), Rect(2, 0, 4, 2)])
        b = RegionSet([Rect(0, 0, 4, 2)])
        assert a.equals_region(b)
        assert not a.equals_region(RegionSet([Rect(0, 0, 4, 2.5)]))


class TestPredicates:
    def test_contains_point(self):
        rs = RegionSet([Rect(0, 0, 2, 2), Rect(10, 10, 12, 12)])
        assert rs.contains_point(1, 1)
        assert rs.contains_point(11, 11)
        assert not rs.contains_point(5, 5)
        assert not rs.contains_point(2, 1)  # half-open high edge

    def test_intersects_rect(self):
        rs = RegionSet([Rect(0, 0, 2, 2)])
        assert rs.intersects_rect(Rect(1, 1, 3, 3))
        assert not rs.intersects_rect(Rect(2, 0, 3, 2))


class TestConstructions:
    def test_union_concatenates(self):
        a = RegionSet([Rect(0, 0, 1, 1)])
        b = RegionSet([Rect(5, 5, 6, 6)])
        assert len(a.union(b)) == 2

    def test_translated(self):
        rs = RegionSet([Rect(0, 0, 1, 1)]).translated(10, 20)
        assert rs.rects[0] == Rect(10, 20, 11, 21)

    def test_clipped_to(self):
        rs = RegionSet([Rect(0, 0, 10, 10)]).clipped_to(Rect(5, 5, 20, 20))
        assert rs.area() == pytest.approx(25.0)

    def test_bounding_box(self):
        rs = RegionSet([Rect(0, 0, 1, 1), Rect(4, -1, 5, 3)])
        assert rs.bounding_box() == Rect(0, -1, 5, 3)


class TestNormalized:
    def test_normalized_preserves_area(self):
        rs = RegionSet([Rect(0, 0, 2, 2), Rect(1, 1, 3, 3), Rect(0, 0, 1, 3)])
        norm = rs.normalized()
        assert norm.area() == pytest.approx(rs.area())

    def test_normalized_is_disjoint(self):
        rs = RegionSet([Rect(0, 0, 2, 2), Rect(1, 1, 3, 3)])
        norm = rs.normalized()
        for i, a in enumerate(norm):
            for b in list(norm)[i + 1 :]:
                assert not a.intersects(b)

    def test_normalized_merges_adjacent(self):
        rs = RegionSet([Rect(0, 0, 1, 1), Rect(1, 0, 2, 1)])
        assert len(rs.normalized()) == 1

    def test_normalized_empty(self):
        assert RegionSet().normalized().is_empty()

    @given(rect_sets)
    @settings(max_examples=40)
    def test_normalized_equivalent(self, rs):
        norm = rs.normalized()
        assert norm.area() == pytest.approx(rs.area())
        assert rs.symmetric_difference_area(norm) == pytest.approx(0.0, abs=1e-9)


class TestPropertyAgainstBruteForce:
    @given(rect_sets)
    @settings(max_examples=60)
    def test_union_area(self, a):
        assert a.area() == pytest.approx(brute_area(a))

    @given(rect_sets, rect_sets)
    @settings(max_examples=60)
    def test_pairwise_measures(self, a, b):
        assert a.intersection_area(b) == pytest.approx(brute_area(a, b, "and"))
        assert a.union_area(b) == pytest.approx(brute_area(a, b, "or"))
        assert a.difference_area(b) == pytest.approx(brute_area(a, b, "diff"))
        assert a.symmetric_difference_area(b) == pytest.approx(brute_area(a, b, "xor"))

    @given(rect_sets, rect_sets)
    @settings(max_examples=40)
    def test_inclusion_exclusion(self, a, b):
        assert a.union_area(b) == pytest.approx(
            a.area() + b.area() - a.intersection_area(b)
        )

    @given(rect_sets, rect_sets)
    @settings(max_examples=40)
    def test_symmetry(self, a, b):
        assert a.intersection_area(b) == pytest.approx(b.intersection_area(a))
        assert a.union_area(b) == pytest.approx(b.union_area(a))
