"""Tests for GridSpec / ChebSurface (multi-polynomial density surfaces)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.chebyshev.grid import ChebSurface, GridSpec
from repro.core.errors import InvalidParameterError
from repro.core.geometry import Rect

DOMAIN = Rect(0.0, 0.0, 100.0, 100.0)


def make_surface(g=4, k=4):
    spec = GridSpec(DOMAIN, g=g, k=k)
    return ChebSurface(spec, spec.zero_coefficients())


class TestGridSpec:
    def test_cell_geometry(self):
        spec = GridSpec(DOMAIN, g=4, k=3)
        assert spec.cell_width == pytest.approx(25.0)
        assert spec.cell_rect(0, 0) == Rect(0, 0, 25, 25)
        assert spec.cell_rect(3, 3) == Rect(75, 75, 100, 100)

    def test_cell_of_clamps(self):
        spec = GridSpec(DOMAIN, g=4, k=3)
        assert spec.cell_of(0.0, 0.0) == (0, 0)
        assert spec.cell_of(99.9, 99.9) == (3, 3)
        assert spec.cell_of(100.0, 100.0) == (3, 3)  # boundary clamps

    def test_normalization_roundtrip(self):
        spec = GridSpec(DOMAIN, g=4, k=3)
        nx = float(spec.to_normalized_x(1, 30.0))
        ny = float(spec.to_normalized_y(2, 60.0))
        x, y = spec.from_normalized(1, 2, nx, ny)
        assert x == pytest.approx(30.0)
        assert y == pytest.approx(60.0)

    def test_normalized_range(self):
        spec = GridSpec(DOMAIN, g=4, k=3)
        assert float(spec.to_normalized_x(0, 0.0)) == pytest.approx(-1.0)
        assert float(spec.to_normalized_x(0, 25.0)) == pytest.approx(1.0)

    def test_memory_formula(self):
        spec = GridSpec(DOMAIN, g=20, k=5)
        # (H+1) * g^2 * (k+1)(k+2)/2 * 8 bytes.
        assert spec.coefficients_memory_bytes(120) == 121 * 400 * 21 * 8

    def test_validation(self):
        with pytest.raises(InvalidParameterError):
            GridSpec(DOMAIN, g=0, k=3)
        with pytest.raises(InvalidParameterError):
            GridSpec(DOMAIN, g=2, k=-1)

    def test_surface_shape_validation(self):
        spec = GridSpec(DOMAIN, g=2, k=2)
        with pytest.raises(InvalidParameterError):
            ChebSurface(spec, np.zeros((2, 2, 4, 4)))


class TestSurfaceIncrements:
    def test_zero_surface(self):
        surface = make_surface()
        assert surface.density_at(50.0, 50.0) == pytest.approx(0.0)

    def test_add_rect_approximates_indicator(self):
        surface = make_surface(g=4, k=6)
        surface.add_rect(Rect(10, 10, 20, 20), height=2.0)
        # Deep inside the rectangle.
        assert surface.density_at(15.0, 15.0) == pytest.approx(2.0, abs=0.35)
        # Far away, same tile.
        assert abs(surface.density_at(5.0, 5.0)) < 0.6
        # Other tiles untouched.
        assert surface.density_at(80.0, 80.0) == pytest.approx(0.0, abs=1e-12)

    def test_add_then_remove_object_cancels(self):
        surface = make_surface()
        before = surface.coeffs.copy()
        surface.add_object(33.0, 44.0, l=10.0)
        surface.remove_object(33.0, 44.0, l=10.0)
        assert np.allclose(surface.coeffs, before, atol=1e-12)

    def test_add_object_spanning_tiles(self):
        surface = make_surface(g=4, k=5)
        # Object at a tile corner: its square touches 4 tiles.
        surface.add_object(50.0, 50.0, l=10.0)
        touched = [
            (i, j)
            for i in range(4)
            for j in range(4)
            if not np.allclose(surface.coeffs[i, j], 0.0)
        ]
        assert set(touched) == {(1, 1), (1, 2), (2, 1), (2, 2)}

    def test_mass_conservation(self):
        """The mean of the approximated delta equals the indicator's mean.

        a_00 of each tile is the tile-average against the Chebyshev weight;
        instead we check the plain integral via a fine sample grid.
        """
        surface = make_surface(g=2, k=8)
        rect = Rect(20, 30, 40, 60)
        surface.add_rect(rect, height=1.0)
        grid = surface.density_grid(160)
        integral = grid.sum() * (100.0 / 160) ** 2
        assert integral == pytest.approx(rect.area, rel=0.05)

    def test_rect_outside_domain_ignored(self):
        surface = make_surface()
        surface.add_rect(Rect(200, 200, 210, 210), 1.0)
        assert np.allclose(surface.coeffs, 0.0)

    def test_density_grid_matches_density_at(self):
        surface = make_surface(g=3, k=4)
        gen = np.random.default_rng(0)
        surface.coeffs[:] = gen.normal(size=surface.coeffs.shape) * 0.1
        res = 12
        grid = surface.density_grid(res)
        for ix in (0, 5, 11):
            for iy in (0, 7, 11):
                x = (ix + 0.5) * (100.0 / res)
                y = (iy + 0.5) * (100.0 / res)
                assert grid[ix, iy] == pytest.approx(
                    surface.density_at(x, y), abs=1e-9
                )

    def test_density_grid_validation(self):
        with pytest.raises(InvalidParameterError):
            make_surface().density_grid(0)


class TestDenseRegions:
    def test_uniform_surface_all_dense(self):
        surface = make_surface(g=2, k=3)
        surface.coeffs[:, :, 0, 0] = 2.0
        regions, stats = surface.dense_regions(rho=1.0, md=64)
        assert regions.area() == pytest.approx(DOMAIN.area)
        assert stats.nodes_visited == 4  # one accept per tile

    def test_uniform_surface_none_dense(self):
        surface = make_surface(g=2, k=3)
        surface.coeffs[:, :, 0, 0] = 0.5
        regions, stats = surface.dense_regions(rho=1.0, md=64)
        assert regions.is_empty()
        assert stats.pruned_by_bound == 4

    def test_hotspot_found(self):
        surface = make_surface(g=4, k=6)
        surface.add_rect(Rect(40, 40, 60, 60), height=5.0)
        regions, _stats = surface.dense_regions(rho=2.5, md=256)
        assert regions.contains_point(50.0, 50.0)
        assert not regions.contains_point(10.0, 10.0)
        # Area roughly matches the hotspot.
        assert regions.area() == pytest.approx(400.0, rel=0.5)

    def test_md_validation(self):
        surface = make_surface(g=4, k=3)
        with pytest.raises(InvalidParameterError):
            surface.dense_regions(rho=1.0, md=2)

    @given(st.integers(0, 1000), st.floats(-0.5, 0.5))
    @settings(max_examples=15, deadline=None)
    def test_regions_within_domain(self, seed, rho):
        surface = make_surface(g=3, k=3)
        gen = np.random.default_rng(seed)
        surface.coeffs[:] = gen.normal(size=surface.coeffs.shape) * 0.3
        regions, _ = surface.dense_regions(rho=rho, md=96)
        box = regions.bounding_box()
        if box is not None:
            assert DOMAIN.x1 - 1e-9 <= box.x1
            assert box.x2 <= DOMAIN.x2 + 1e-9
