"""Tests for the experiment harness (smoke profile) and its helpers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.errors import InvalidParameterError
from repro.core.geometry import Rect
from repro.core.regions import RegionSet
from repro.experiments.config import PROFILES, ScaleProfile, active_profile
from repro.experiments.datasets import (
    WorldSpec,
    build_world,
    clear_world_cache,
    get_world,
    medium_world_spec,
    plain_world_spec,
)
from repro.experiments.report import format_table, format_value
from repro.experiments.table1 import run_table1
from repro.experiments.viz import render_points, render_region, side_by_side

TINY = ScaleProfile(
    name="tiny",
    small=80,
    medium=150,
    large=300,
    n_queries=1,
    warmup=4,
    network_grid=10,
    raster_resolution=256,
)


@pytest.fixture(scope="module")
def tiny_world():
    spec = WorldSpec(
        n_objects=150,
        warmup=4,
        network_grid=10,
        extra_pa=((8, 3, 30.0), (10, 5, 60.0)),
        extra_histograms=(100,),
    )
    return build_world(spec, raster_resolution=256)


class TestProfiles:
    def test_profiles_exist(self):
        assert {"smoke", "default", "paper"} <= set(PROFILES)

    def test_paper_sizes(self):
        p = PROFILES["paper"]
        assert p.sizes == (10_000, 100_000, 500_000)
        assert p.n_queries == 20

    def test_dataset_names(self):
        p = PROFILES["paper"]
        assert p.dataset_name(100_000) == "CH100K"
        assert p.dataset_name(2500) == "CH2500"

    def test_active_profile_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "smoke")
        assert active_profile().name == "smoke"
        monkeypatch.setenv("REPRO_SCALE", "bogus")
        with pytest.raises(InvalidParameterError):
            active_profile()

    def test_active_profile_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_SCALE", raising=False)
        assert active_profile().name == "default"


class TestWorldBuilding:
    def test_world_is_warm(self, tiny_world):
        assert tiny_world.server.tnow == 4
        assert tiny_world.server.object_count() == 150
        assert tiny_world.simulator.reports_issued >= 150

    def test_variant_structures_maintained(self, tiny_world):
        qt = tiny_world.server.tnow
        pa60 = tiny_world.pa_for(60.0, g=10, k=5)
        assert pa60.l == 60.0
        # The variant saw the same updates as the primary.
        assert tiny_world.extra_pa_timers[(10, 5, 60.0)].updates > 0
        assert tiny_world.histogram_for(100).total_at(qt) > 0

    def test_pa_for_primary(self, tiny_world):
        primary = tiny_world.pa_for(30.0)
        assert primary is tiny_world.server.pa

    def test_pa_for_unknown_raises(self, tiny_world):
        with pytest.raises(InvalidParameterError):
            tiny_world.pa_for(45.0)

    def test_histogram_for_unknown_raises(self, tiny_world):
        with pytest.raises(InvalidParameterError):
            tiny_world.histogram_for(123)

    def test_query_times_within_window(self, tiny_world):
        w = tiny_world.server.config.prediction_window
        times = tiny_world.query_times(10)
        tnow = tiny_world.server.tnow
        assert all(tnow <= qt <= tnow + w for qt in times)

    def test_exact_answer_cached(self, tiny_world):
        q = tiny_world.server.make_query(qt=tiny_world.server.tnow, varrho=2.0)
        a = tiny_world.exact_answer(q)
        b = tiny_world.exact_answer(q)
        assert a is b

    def test_get_world_memoises(self):
        clear_world_cache()
        spec = WorldSpec(n_objects=30, warmup=2, network_grid=6)
        w1 = get_world(spec, raster_resolution=128)
        w2 = get_world(spec, raster_resolution=128)
        assert w1 is w2
        clear_world_cache()

    def test_spec_helpers(self):
        spec = medium_world_spec(TINY)
        assert spec.n_objects == TINY.medium
        assert (20, 5, 60.0) in spec.extra_pa
        plain = plain_world_spec(TINY, 80)
        assert plain.extra_pa == ()


class TestFigureRunners:
    def test_fig7(self, tiny_world):
        from repro.experiments.fig7_example import run_fig7

        result = run_fig7(TINY, world=tiny_world)
        assert result.fr_rects > 0
        assert result.pa_rects > 0
        assert 0.0 <= result.jaccard <= 1.0
        combined = result.combined()
        assert "(a) objects" in combined
        assert "(b) dense regions (FR)" in combined

    def test_fig8ab_shapes(self, tiny_world):
        from repro.experiments.fig8_accuracy import run_fig8ab

        rows = run_fig8ab(TINY, world=tiny_world)
        # (l in {30, 60}) x (varrho in 1..5) rows.
        assert len(rows) == 10
        for row in rows:
            assert row["r_fn_pa_pct"] >= 0.0
            assert row["r_fp_dh_optimistic_pct"] >= 0.0

    def test_fig8cd_memory_sweep(self, tiny_world):
        from repro.experiments.fig8_accuracy import run_fig8cd

        rows = run_fig8cd(TINY, world=tiny_world)
        pa_rows = [r for r in rows if r["method"] == "PA"]
        dh_rows = [r for r in rows if r["method"] == "DH"]
        assert len(pa_rows) >= 2  # primary + at-l variants
        assert len(dh_rows) == 2  # primary + m=100
        mems = [r["memory_mb"] for r in pa_rows]
        assert mems == sorted(mems)

    def test_fig9(self, tiny_world):
        from repro.experiments.fig9_cpu import run_fig9a, run_fig9b

        rows_a = run_fig9a(TINY, world=tiny_world)
        assert len(rows_a) == 10
        assert all(r["pa_cpu_s"] >= 0 for r in rows_a)
        rows_b = run_fig9b(TINY, world=tiny_world)
        structures = {r["structure"] for r in rows_b}
        assert structures == {"DH", "PA"}
        assert all(r["updates"] > 0 for r in rows_b)

    def test_fig10a(self, tiny_world):
        from repro.experiments.fig10_cost import run_fig10a

        rows = run_fig10a(TINY, world=tiny_world)
        assert len(rows) == 10
        for row in rows:
            assert row["fr_total_s"] >= row["fr_io_s"]
            assert row["speedup"] > 0

    def test_table1(self):
        rows = run_table1(TINY)
        params = {r["parameter"] for r in rows}
        assert "Time horizon (H = U + W)" in params
        assert "Degree of polynomial (k)" in params


class TestVizAndReport:
    def test_render_points(self):
        art = render_points([(10.0, 10.0), (90.0, 90.0)], Rect(0, 0, 100, 100),
                            width=10, height=5)
        lines = art.splitlines()
        assert len(lines) == 5
        assert all(len(line) == 10 for line in lines)
        assert any(ch != " " for ch in art)

    def test_render_region(self):
        region = RegionSet([Rect(0, 0, 50, 50)])
        art = render_region(region, Rect(0, 0, 100, 100), width=10, height=10)
        lines = art.splitlines()
        # Bottom-left quadrant filled (rendering flips y).
        assert lines[-1][0] == "#"
        assert lines[0][-1] == "."

    def test_render_validation(self):
        with pytest.raises(InvalidParameterError):
            render_points([], Rect(0, 0, 1, 1), width=0)
        with pytest.raises(InvalidParameterError):
            render_region(RegionSet(), Rect(0, 0, 1, 1), height=0)

    def test_side_by_side(self):
        merged = side_by_side([("A", "xx\nyy"), ("B", "zz")])
        lines = merged.splitlines()
        assert "A" in lines[0] and "B" in lines[0]
        assert len(lines) == 3

    def test_format_value(self):
        assert format_value(0) == "0"
        assert format_value(0.123456) == "0.1235"
        assert format_value(12345.0) == "12,345"
        assert format_value(float("inf")) == "inf"
        assert format_value(float("nan")) == "nan"
        assert format_value("abc") == "abc"

    def test_format_table(self):
        text = format_table([{"a": 1, "b": 2.5}], title="T")
        assert text.startswith("T")
        assert "a" in text and "2.5" in text

    def test_format_table_empty(self):
        assert "(no rows)" in format_table([])
