"""Figure-level scientific properties of the paper, checked at tiny scale.

These tests assert the *shape* claims of the evaluation section on small
deterministic worlds: accuracy orderings, pruning behaviour, scalability
direction.  Timing itself is not asserted (too flaky for CI); deterministic
proxies (node counts, I/O counts, error ratios) are.
"""

from __future__ import annotations

import pytest

from repro.experiments.datasets import WorldSpec, build_world
from repro.histogram.answers import dh_optimistic, dh_pessimistic

VARRHOS = (1.0, 2.0, 3.0, 4.0, 5.0)


@pytest.fixture(scope="module")
def world():
    spec = WorldSpec(n_objects=400, warmup=6, network_grid=12, seed=3)
    return build_world(spec, raster_resolution=512)


@pytest.fixture(scope="module")
def bigger_world():
    spec = WorldSpec(n_objects=1200, warmup=6, network_grid=12, seed=3)
    return build_world(spec, raster_resolution=512)


def _accuracies(world, varrho):
    server = world.server
    qt = server.tnow + 3
    query = server.make_query(qt=qt, varrho=varrho)
    exact = world.exact_answer(query).regions
    pa = server.pa.query(query)
    opt = dh_optimistic(server.histogram, query)
    pess = dh_pessimistic(server.histogram, query)
    return {
        "pa": world.raster.accuracy(exact, pa.regions),
        "opt": world.raster.accuracy(exact, opt.regions),
        "pess": world.raster.accuracy(exact, pess.regions),
        "pa_stats": pa.stats,
    }


class TestFigure8Properties:
    def test_dh_guarantees(self, world):
        for varrho in (2.0, 4.0):
            acc = _accuracies(world, varrho)
            assert acc["opt"].r_fn == pytest.approx(0.0, abs=1e-9)
            assert acc["pess"].r_fp == pytest.approx(0.0, abs=1e-9)

    def test_pa_beats_dh_on_both_ratios(self, world):
        """Figure 8(a,b): PA error below the corresponding DH error."""
        pa_fp = pa_fn = dh_fp = dh_fn = 0.0
        for varrho in (2.0, 3.0):
            acc = _accuracies(world, varrho)
            pa_fp += acc["pa"].r_fp
            pa_fn += acc["pa"].r_fn
            dh_fp += acc["opt"].r_fp
            dh_fn += acc["pess"].r_fn
        assert pa_fp < dh_fp
        assert pa_fn < dh_fn

    def test_dh_error_grows_with_threshold(self, world):
        """Figure 8(a,b): shrinking area(D) inflates the DH error ratios."""
        low = _accuracies(world, 1.0)
        high = _accuracies(world, 5.0)
        assert high["opt"].r_fp > low["opt"].r_fp
        assert high["pess"].r_fn > low["pess"].r_fn

    def test_pa_memory_improves_accuracy(self, world):
        """Figure 8(c,d) direction: a richer PA config cannot be much worse.

        Compare the primary (g=20, k=5) against a deliberately starved
        (g=5, k=2-equivalent) surface built from the same coefficients is
        not possible post-hoc, so we check against the analytical bound:
        a degree-0-style baseline (the domain-average density) is beaten by
        the maintained surface on Jaccard.
        """
        server = world.server
        qt = server.tnow + 3
        query = server.make_query(qt=qt, varrho=2.0)
        exact = world.exact_answer(query).regions
        pa = server.pa.query(query).regions
        jacc_pa = world.raster.accuracy(exact, pa).jaccard
        # Trivial predictor: everything dense (varrho <= 1 on average) or
        # nothing dense; its Jaccard is area-ratio bounded.
        from repro.core.regions import RegionSet

        all_region = RegionSet([server.config.domain])
        jacc_all = world.raster.accuracy(exact, all_region).jaccard
        assert jacc_pa > jacc_all


class TestFigure9Properties:
    def test_bnb_prunes_more_at_higher_threshold(self, world):
        """Figure 9(a) mechanism: higher threshold => fewer B&B nodes."""
        server = world.server
        qt = server.tnow + 3
        nodes = []
        for varrho in (1.0, 5.0):
            query = server.make_query(qt=qt, varrho=varrho)
            nodes.append(server.pa.query(query).stats.bnb_nodes)
        assert nodes[1] < nodes[0]

    def test_pa_update_costlier_than_dh(self, world):
        """Figure 9(b): PA maintenance costs more per update than DH."""
        assert (
            world.server.pa_timer.mean_seconds_per_update
            > world.server.dh_timer.mean_seconds_per_update
        )


class TestFigure10Properties:
    def test_fr_io_grows_with_dataset(self, world, bigger_world):
        """Figure 10(b): FR cost scales with N (I/O count proxy)."""
        costs = []
        for w in (world, bigger_world):
            server = w.server
            query = server.make_query(qt=server.tnow + 3, varrho=2.0)
            result = server.evaluate("fr", query)
            costs.append(result.stats.io_count)
        assert costs[1] > costs[0]

    def test_pa_work_insensitive_to_dataset(self, world, bigger_world):
        """Figure 10(b): PA work depends on the surface, not on N."""
        nodes = []
        for w in (world, bigger_world):
            server = w.server
            query = server.make_query(qt=server.tnow + 3, varrho=2.0)
            nodes.append(server.pa.query(query).stats.bnb_nodes)
        # Within a factor of ~3 while N tripled (regions differ slightly).
        assert nodes[1] < 3 * nodes[0]

    def test_fr_total_cost_dominated_by_io(self, bigger_world):
        """Figure 10(a): FR pays mostly I/O; PA pays none."""
        server = bigger_world.server
        query = server.make_query(qt=server.tnow + 3, varrho=2.0)
        fr = server.evaluate("fr", query)
        pa = server.pa.query(query)
        assert fr.stats.io_seconds > fr.stats.cpu_seconds
        assert pa.stats.io_seconds == 0.0
        assert pa.stats.total_seconds < fr.stats.total_seconds
