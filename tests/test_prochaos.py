"""Kill matrix: one real cell end-to-end, plus the cell's own contract.

The sweep over every crashpoint × seed belongs to
``scripts/crash_matrix.py`` and CI; here one representative cell runs
for real — crash-before-manifest-rename, the classic window — to keep
the harness itself honest, and the pure parts (site validation,
seed-derived arming) are checked exhaustively.
"""

from __future__ import annotations

import pytest

from repro.core.errors import ReproError
from repro.reliability.crashpoints import CRASH_SITES
from repro.reliability.prochaos import (
    ProcessChaosConfig,
    ProcessChaosResult,
    run_process_cell,
)


def test_unknown_site_is_rejected_up_front():
    with pytest.raises(ReproError, match="unknown crashpoint"):
        ProcessChaosConfig(site="wal.appendix")


def test_seed_derived_arming_varies_and_stays_reachable():
    afters = {ProcessChaosConfig(site="wal.append", seed=s).arm_after
              for s in range(20)}
    assert len(afters) > 1  # different seeds die at different depths
    assert all(a >= 3 for a in afters)  # but never before real traffic
    for seed in range(20):
        config = ProcessChaosConfig(site="checkpoint.manifest", seed=seed)
        assert config.arm_after <= 1  # once-per-checkpoint sites stay low
        assert config.arm_torn is None  # torn is wal_write-only
        torn = ProcessChaosConfig(site="wal_write", seed=seed).arm_torn
        assert 0.0 < torn < 1.0


def test_reproducer_carries_the_rerun_command():
    result = ProcessChaosResult(site="wal_fsync", seed=9,
                                violations=["acked-write loss: ..."])
    as_dict = result.to_dict()
    assert as_dict["rerun"].endswith("--crashpoint wal_fsync --seed 9")
    assert "wal_fsync" in result.format_reproducer()
    assert "rerun:" in result.format_reproducer()


def test_one_cell_end_to_end_crash_before_manifest_rename(tmp_path):
    config = ProcessChaosConfig(site="checkpoint.manifest", seed=2)
    assert config.site in CRASH_SITES
    result = run_process_cell(config, str(tmp_path))
    assert result.ok, result.format_reproducer()
    # the crash actually happened, once, and the client saw the recovery
    assert result.stats["restarts"] == 1
    assert result.stats["client_generation"] >= 1
    # the durability verdicts the matrix exists for
    assert result.stats["max_acked_lsn"] > 0
    assert result.stats["recovered_lsn"] >= result.stats["max_acked_lsn"]
    # the supervisor's machine-readable history rode along as evidence
    assert any("event=backoff" in line for line in result.events)
