"""Tests for delta coefficients (Lemma 4), expansion bounds and B&B search."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.chebyshev.bnb import dense_boxes, dense_boxes_grid
from repro.chebyshev.bounds import bound_expansion
from repro.chebyshev.cheb2d import (
    approximate_function,
    evaluate,
    total_degree_mask,
)
from repro.chebyshev.delta import delta_coefficients, delta_coefficients_batch
from repro.core.errors import InvalidParameterError

interval = st.tuples(st.floats(-1, 1), st.floats(-1, 1)).map(
    lambda t: (min(t), max(t))
)


def random_coeffs(k, seed):
    gen = np.random.default_rng(seed)
    coeffs = gen.normal(size=(k + 1, k + 1))
    coeffs[~total_degree_mask(k)] = 0.0
    return coeffs


class TestDeltaCoefficients:
    def test_matches_quadrature_of_indicator(self):
        """Closed-form delta coefficients equal the quadrature coefficients
        of the same indicator function (up to quadrature error on a
        discontinuous integrand)."""
        x1, x2, y1, y2, height = -0.4, 0.3, -0.1, 0.8, 2.0

        def indicator(x, y):
            return height if (x1 <= x <= x2 and y1 <= y <= y2) else 0.0

        closed = delta_coefficients(4, x1, x2, y1, y2, height)
        quad = approximate_function(indicator, k=4, quad_points=4000)
        assert np.abs(closed - quad).max() < 5e-3

    def test_full_domain_is_constant(self):
        coeffs = delta_coefficients(5, -1, 1, -1, 1, 3.0)
        assert coeffs[0, 0] == pytest.approx(3.0)
        rest = coeffs.copy()
        rest[0, 0] = 0.0
        assert np.allclose(rest, 0.0, atol=1e-12)

    def test_empty_rect_zero(self):
        assert np.allclose(delta_coefficients(4, 0.5, 0.5, -1, 1, 1.0), 0.0)
        assert np.allclose(delta_coefficients(4, 0.7, 0.2, -1, 1, 1.0), 0.0)

    def test_linearity_in_height(self):
        a = delta_coefficients(4, -0.5, 0.5, -0.5, 0.5, 1.0)
        b = delta_coefficients(4, -0.5, 0.5, -0.5, 0.5, 2.5)
        assert np.allclose(b, 2.5 * a)

    def test_additivity_of_disjoint_rects(self):
        whole = delta_coefficients(5, -0.6, 0.6, -0.2, 0.2, 1.0)
        left = delta_coefficients(5, -0.6, 0.0, -0.2, 0.2, 1.0)
        right = delta_coefficients(5, 0.0, 0.6, -0.2, 0.2, 1.0)
        assert np.allclose(whole, left + right, atol=1e-12)

    def test_clipping_matches_clipped_rect(self):
        a = delta_coefficients(4, -5.0, 0.5, -1.0, 2.0, 1.0)
        b = delta_coefficients(4, -1.0, 0.5, -1.0, 1.0, 1.0)
        assert np.allclose(a, b)

    def test_total_degree_truncation(self):
        coeffs = delta_coefficients(3, -0.3, 0.4, -0.5, 0.5, 1.0)
        assert np.allclose(coeffs[~total_degree_mask(3)], 0.0)

    def test_batch_matches_single(self):
        rects = [
            (-0.5, 0.5, -0.5, 0.5),
            (-1.0, -0.2, 0.0, 0.9),
            (0.1, 0.1, -1.0, 1.0),  # empty
        ]
        batch = delta_coefficients_batch(
            4,
            np.array([r[0] for r in rects]),
            np.array([r[1] for r in rects]),
            np.array([r[2] for r in rects]),
            np.array([r[3] for r in rects]),
            height=0.7,
        )
        for idx, (x1, x2, y1, y2) in enumerate(rects):
            single = delta_coefficients(4, x1, x2, y1, y2, 0.7)
            assert np.allclose(batch[idx], single, atol=1e-12)

    def test_batch_empty_input(self):
        out = delta_coefficients_batch(
            3, np.array([]), np.array([]), np.array([]), np.array([]), 1.0
        )
        assert out.shape == (0, 4, 4)

    def test_batch_shape_mismatch(self):
        with pytest.raises(InvalidParameterError):
            delta_coefficients_batch(
                3, np.array([0.0]), np.array([0.1, 0.2]), np.array([0.0]),
                np.array([0.1]), 1.0
            )


class TestBoundExpansion:
    @given(st.integers(0, 6), interval, interval, st.integers(0, 10_000))
    @settings(max_examples=80)
    def test_bounds_are_sound(self, k, xint, yint, seed):
        coeffs = random_coeffs(k, seed)
        (x1, x2), (y1, y2) = xint, yint
        lo, hi = bound_expansion(coeffs, x1, x2, y1, y2)
        xs = np.linspace(x1, x2, 17)
        ys = np.linspace(y1, y2, 17)
        for x in xs:
            vals = evaluate(coeffs, np.full(17, x), ys)
            assert vals.min() >= lo - 1e-7
            assert vals.max() <= hi + 1e-7

    def test_constant_expansion_tight(self):
        coeffs = np.zeros((3, 3))
        coeffs[0, 0] = 2.5
        lo, hi = bound_expansion(coeffs, -0.5, 0.5, -0.5, 0.5)
        assert lo == pytest.approx(2.5)
        assert hi == pytest.approx(2.5)

    def test_linear_expansion_tight(self):
        coeffs = np.zeros((2, 2))
        coeffs[1, 0] = 1.0  # f = x
        lo, hi = bound_expansion(coeffs, 0.2, 0.6, -1, 1)
        assert lo == pytest.approx(0.2)
        assert hi == pytest.approx(0.6)


class TestDenseBoxes:
    def test_constant_above_threshold_whole_domain(self):
        coeffs = np.zeros((3, 3))
        coeffs[0, 0] = 5.0
        result = dense_boxes(coeffs, rho=1.0, min_edge=0.1)
        assert len(result) == 1
        assert result.box_tuples()[0] == (-1.0, -1.0, 1.0, 1.0)
        assert result.accepted_by_bound == 1
        assert result.nodes_visited == 1

    def test_constant_below_threshold_empty(self):
        coeffs = np.zeros((3, 3))
        coeffs[0, 0] = 0.5
        result = dense_boxes(coeffs, rho=1.0, min_edge=0.1)
        assert len(result) == 0
        assert result.pruned_by_bound == 1

    def test_halfplane_split(self):
        # f = x: dense where x >= 0.
        coeffs = np.zeros((2, 2))
        coeffs[1, 0] = 1.0
        result = dense_boxes(coeffs, rho=0.0, min_edge=0.05)
        # Total accepted area should approximate the half plane (area 2).
        area = sum((x2 - x1) * (y2 - y1) for x1, y1, x2, y2 in result.box_tuples())
        assert area == pytest.approx(2.0, abs=0.2)
        for x1, _y1, x2, _y2 in result.box_tuples():
            assert x2 > -0.06  # nothing deep in the negative half

    def test_min_edge_validation(self):
        with pytest.raises(InvalidParameterError):
            dense_boxes(np.zeros((2, 2)), 0.0, 0.0)

    @given(st.integers(2, 5), st.integers(0, 10_000), st.floats(-1, 1))
    @settings(max_examples=30, deadline=None)
    def test_boxes_classify_correctly_at_resolution(self, k, seed, rho):
        """Every accepted box centre is >= rho; every deeply-excluded point
        is < rho (boundary leaves may go either way at min_edge)."""
        coeffs = random_coeffs(k, seed)
        min_edge = 0.125
        result = dense_boxes(coeffs, rho=rho, min_edge=min_edge)
        boxes = result.box_tuples()
        # Accepted box centres are dense.
        for x1, y1, x2, y2 in boxes:
            cx, cy = (x1 + x2) / 2, (y1 + y2) / 2
            val = evaluate(coeffs, np.array([cx]), np.array([cy]))[0]
            assert val >= rho - 1e-6
        # A dense point outside every box must sit in a dyadic leaf whose
        # centre is below rho — the exact semantics of the m_d fallback
        # (the recursion halves [-1,1] down to cells of size min_edge).
        gen = np.random.default_rng(seed + 1)
        for _ in range(30):
            px, py = gen.uniform(-1, 1, size=2)
            in_box = any(
                x1 <= px <= x2 and y1 <= py <= y2 for x1, y1, x2, y2 in boxes
            )
            if in_box:
                continue
            val = evaluate(coeffs, np.array([px]), np.array([py]))[0]
            if val < rho + 1e-6:
                continue
            leaf_cx = (np.floor((px + 1.0) / min_edge) + 0.5) * min_edge - 1.0
            leaf_cy = (np.floor((py + 1.0) / min_edge) + 0.5) * min_edge - 1.0
            centre_val = evaluate(
                coeffs, np.array([leaf_cx]), np.array([leaf_cy])
            )[0]
            assert centre_val < rho + 1e-6

    def test_grid_version_matches_per_tile(self):
        gen = np.random.default_rng(7)
        grid = gen.normal(size=(2, 2, 4, 4))
        grid[:, :, ~total_degree_mask(3)] = 0.0
        combined = dense_boxes_grid(grid, rho=0.3, min_edge=0.25)
        # Per-tile searches produce the same boxes per tile.
        for i in range(2):
            for j in range(2):
                single = dense_boxes(grid[i, j], rho=0.3, min_edge=0.25)
                mask = (combined.tiles[:, 0] == i) & (combined.tiles[:, 1] == j)
                got = sorted(map(tuple, np.round(combined.boxes[mask], 9)))
                want = sorted(map(tuple, np.round(single.boxes, 9)))
                assert got == want

    def test_grid_shape_validation(self):
        with pytest.raises(InvalidParameterError):
            dense_boxes_grid(np.zeros((2, 3, 4, 4)), 0.0, 0.1)
