"""Tests for server snapshot persistence and the command-line interface."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cli import build_parser, main
from repro.core.errors import QueryError, StorageError
from repro.storage.snapshot import load_server, save_server
from tests.conftest import populate_clustered, small_system_config
from repro.core.system import PDRServer


@pytest.fixture
def warm_server():
    server = PDRServer(small_system_config(), expected_objects=120)
    populate_clustered(server, 120, seed=5)
    server.advance_to(2)
    # A few re-reports after the advance so ring buffers are non-trivial.
    gen = np.random.default_rng(9)
    for oid in range(0, 20):
        x, y = gen.uniform(10, 90, size=2)
        server.report(oid, float(x), float(y), 0.1, -0.1)
    return server


class TestSnapshotRoundTrip:
    def test_motions_preserved(self, warm_server, tmp_path):
        path = tmp_path / "snap.npz"
        save_server(warm_server, path)
        restored = load_server(path)
        assert restored.tnow == warm_server.tnow
        assert restored.object_count() == warm_server.object_count()
        for motion in warm_server.table.motions():
            twin = restored.table.motion_of(motion.oid)
            assert twin is not None
            assert (twin.x, twin.y, twin.vx, twin.vy, twin.t_ref) == (
                motion.x, motion.y, motion.vx, motion.vy, motion.t_ref,
            )

    def test_queries_identical_after_restore(self, warm_server, tmp_path):
        path = tmp_path / "snap.npz"
        save_server(warm_server, path)
        restored = load_server(path)
        qt = warm_server.tnow + 3
        for method in ("fr", "pa", "dh-optimistic"):
            a = warm_server.query(method, qt=qt, varrho=3.0)
            b = restored.query(method, qt=qt, varrho=3.0)
            assert a.regions.symmetric_difference_area(b.regions) == pytest.approx(
                0.0, abs=1e-9
            )

    def test_restored_server_accepts_updates(self, warm_server, tmp_path):
        path = tmp_path / "snap.npz"
        save_server(warm_server, path)
        restored = load_server(path)
        restored.report(9999, 50.0, 50.0, 0.0, 0.0)
        restored.advance_to(restored.tnow + 1)
        assert restored.object_count() == warm_server.object_count() + 1
        # Structures stay mutually consistent after restore + new updates.
        exact = restored.query("fr", qt=restored.tnow, varrho=3.0)
        oracle = restored.query("bruteforce", qt=restored.tnow, varrho=3.0)
        assert exact.regions.symmetric_difference_area(
            oracle.regions
        ) == pytest.approx(0.0, abs=1e-6)

    def test_bad_version_rejected(self, warm_server, tmp_path):
        path = tmp_path / "snap.npz"
        save_server(warm_server, path)
        data = dict(np.load(path, allow_pickle=False))
        data["format_version"] = np.int64(999)
        np.savez(path, **data)
        with pytest.raises(StorageError):
            load_server(path)

    def test_restore_requires_empty_table(self, warm_server):
        with pytest.raises(QueryError):
            warm_server.table.restore([], 0)

    def test_shape_mismatch_rejected(self, warm_server):
        from repro.core.errors import InvalidParameterError

        bad = {"counts": np.zeros((2, 3, 3), dtype=np.int32),
               "slot_time": np.zeros(2, dtype=np.int64), "tnow": 0}
        with pytest.raises(InvalidParameterError):
            warm_server.histogram.load_state_arrays(bad)
        bad_pa = {"coeffs": np.zeros((2, 1, 1, 2, 2)),
                  "slot_time": np.zeros(2, dtype=np.int64), "tnow": 0}
        with pytest.raises(InvalidParameterError):
            warm_server.pa.load_state_arrays(bad_pa)

    def test_state_arrays_are_copies(self, warm_server):
        state = warm_server.histogram.state_arrays()
        state["counts"][:] = -99
        assert int(warm_server.histogram.counts_at(warm_server.tnow).min()) >= 0


class TestCLI:
    def test_parser_subcommands(self):
        parser = build_parser()
        args = parser.parse_args(["simulate", "--objects", "10", "--out", "x.npz"])
        assert args.command == "simulate"
        args = parser.parse_args(
            ["query", "--snapshot", "x.npz", "--varrho", "2"]
        )
        assert args.command == "query"
        assert args.method == "pa"

    def test_query_requires_threshold(self):
        parser = build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args(["query", "--snapshot", "x.npz"])

    def test_simulate_then_query(self, tmp_path, capsys):
        snap = tmp_path / "world.npz"
        rc = main(
            [
                "simulate", "--objects", "150", "--warmup", "4",
                "--network-grid", "8", "--out", str(snap),
            ]
        )
        assert rc == 0
        assert snap.exists()
        rc = main(
            [
                "query", "--snapshot", str(snap), "--method", "pa",
                "--varrho", "3", "--offset", "2", "--max-rects", "2",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "dense rectangles" in out

    def test_peaks_subcommand(self, tmp_path, capsys):
        snap = tmp_path / "world.npz"
        main(["simulate", "--objects", "120", "--warmup", "2",
              "--network-grid", "8", "--out", str(snap)])
        capsys.readouterr()
        rc = main(["peaks", "--snapshot", str(snap), "--k", "2",
                   "--separation", "10"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "density peaks" in out
        assert out.count("density 0") >= 1

    def test_query_geojson(self, tmp_path, capsys):
        import json

        snap = tmp_path / "world.npz"
        main(["simulate", "--objects", "120", "--warmup", "2",
              "--network-grid", "8", "--out", str(snap)])
        capsys.readouterr()
        main(["query", "--snapshot", str(snap), "--method", "pa",
              "--varrho", "4", "--geojson", "--max-rects", "0"])
        out = capsys.readouterr().out
        geo_line = out.strip().splitlines()[-1]
        geo = json.loads(geo_line)
        assert geo["type"] == "MultiPolygon"

    def test_query_render(self, tmp_path, capsys):
        snap = tmp_path / "world.npz"
        main(["simulate", "--objects", "100", "--warmup", "2",
              "--network-grid", "8", "--out", str(snap)])
        capsys.readouterr()
        main(["query", "--snapshot", str(snap), "--method", "dh-optimistic",
              "--varrho", "2", "--render"])
        out = capsys.readouterr().out
        assert "\n" in out
        # The render block is 30 lines of 60 chars.
        lines = out.strip().splitlines()
        assert any(len(line) == 60 for line in lines)

    def test_query_with_deadline_reports_actual_method(self, tmp_path, capsys):
        snap = tmp_path / "world.npz"
        main(["simulate", "--objects", "100", "--warmup", "2",
              "--network-grid", "8", "--out", str(snap)])
        capsys.readouterr()
        rc = main(["query", "--snapshot", str(snap), "--method", "fr",
                   "--varrho", "2", "--deadline", "60"])
        assert rc == 0
        captured = capsys.readouterr()
        # a generous budget: FR answers itself, nothing degrades
        assert captured.out.startswith("fr @")
        assert "degraded" not in captured.err


class TestCLIErrorMapping:
    """Every ReproError family maps to one stderr line + a distinct code."""

    def test_missing_snapshot_is_a_storage_error(self, tmp_path, capsys):
        rc = main(["query", "--snapshot", str(tmp_path / "absent.npz"),
                   "--varrho", "2"])
        assert rc == 3
        captured = capsys.readouterr()
        assert captured.out == ""
        err_lines = captured.err.strip().splitlines()
        assert len(err_lines) == 1
        assert err_lines[0].startswith("error: StorageError")

    def test_invalid_parameter_exits_2(self, tmp_path, capsys):
        snap = tmp_path / "world.npz"
        main(["simulate", "--objects", "80", "--warmup", "2",
              "--network-grid", "8", "--out", str(snap)])
        capsys.readouterr()
        rc = main(["query", "--snapshot", str(snap), "--varrho", "2",
                   "--l", "-5"])
        assert rc == 2
        assert "error: InvalidParameterError" in capsys.readouterr().err

    def test_horizon_violation_exits_4(self, tmp_path, capsys):
        snap = tmp_path / "world.npz"
        main(["simulate", "--objects", "80", "--warmup", "2",
              "--network-grid", "8", "--out", str(snap)])
        capsys.readouterr()
        rc = main(["query", "--snapshot", str(snap), "--varrho", "2",
                   "--offset", "10000"])
        assert rc == 4
        assert "error: HorizonError" in capsys.readouterr().err

    def test_exit_codes_are_distinct_and_nonzero(self):
        from repro.cli import EXIT_CODES

        codes = [code for _cls, code in EXIT_CODES]
        assert len(set(codes)) == len(codes)
        assert all(code != 0 for code in codes)


class TestServingCLI:
    """The replicated-serving surface: --replicas/--staleness/reliability."""

    def _snapshot(self, tmp_path):
        snap = tmp_path / "world.npz"
        main(["simulate", "--objects", "120", "--warmup", "2",
              "--network-grid", "8", "--out", str(snap)])
        return snap

    def test_query_through_a_replication_group(self, tmp_path, capsys):
        snap = self._snapshot(tmp_path)
        capsys.readouterr()
        rc = main(["query", "--snapshot", str(snap), "--method", "pa",
                   "--varrho", "2", "--replicas", "2", "--staleness", "0"])
        out = capsys.readouterr().out
        assert rc == 0
        # a caught-up replica (bootstrapped from the LSN-0 checkpoint
        # image) serves the read, and the topology line reports the group
        assert "[served by replica-" in out
        assert "replication: epoch 1" in out
        assert "replica-0 lag=0, replica-1 lag=0" in out

    def test_reliability_report_flag_emits_json(self, tmp_path, capsys):
        import json

        snap = self._snapshot(tmp_path)
        capsys.readouterr()
        rc = main(["query", "--snapshot", str(snap), "--method", "pa",
                   "--varrho", "2", "--replicas", "1", "--reliability-report"])
        captured = capsys.readouterr()
        assert rc == 0
        report = json.loads(captured.err.strip().splitlines()[-1])
        assert report["replication"]["epoch"] == 1
        assert report["queries_served"] >= 0
        assert "dead_letter_total" in report

    def test_reliability_subcommand_reads_a_state_dir(self, tmp_path, capsys):
        import json

        from repro.reliability.validation import ReliabilityConfig

        state_dir = str(tmp_path / "state")
        server = PDRServer(
            small_system_config(),
            expected_objects=60,
            reliability=ReliabilityConfig(state_dir=state_dir, fsync=False),
        )
        populate_clustered(server, 60, seed=3)
        server.report(0, float("nan"), 1.0, 0.0, 0.0)  # one dead-lettered report
        assert server.reliability_report()["dead_letter_total"] == 1
        server.advance_to(2)
        server.close()
        rc = main(["reliability", "--state-dir", state_dir])
        out = capsys.readouterr().out
        assert rc == 0
        report = json.loads(out)
        assert report["wal_lsn"] == server.wal_lsn
        # dead letters are deliberately not durable: a rejected report never
        # reached the WAL, so the recovered process starts a fresh ledger
        assert report["dead_letter_total"] == 0
        assert "dead_letter_counts" in report
        assert report["role"] == "primary"

    def test_replication_errors_exit_7(self):
        from repro.cli import EXIT_CODES
        from repro.core.errors import NotPrimaryError, StalenessExceededError

        def code_for(exc):
            for cls, code in EXIT_CODES:
                if isinstance(exc, cls):
                    return code
            raise AssertionError("unmapped")

        assert code_for(NotPrimaryError("x")) == 7
        # a staleness violation is a serving problem, not a bad query
        assert code_for(StalenessExceededError("x")) == 7
