"""Validate ``repro journal --format json`` output piped on stdin.

CI runs a probe workload with ``REPRO_JOURNAL_DIR`` set, dumps the
journal as JSON, and pipes it here: the check is that every record
carries the envelope fields with the right types, seqs are per-process
monotonic, and events are non-empty strings.  Stdlib only — this runs
in the metrics-smoke job before any dependency install.

Exit 0 on a valid, non-empty journal; exit 1 with a reason otherwise.
"""

from __future__ import annotations

import json
import sys

ENVELOPE = {"seq": int, "ts": float, "perf": float, "pid": int, "event": str}


def check(records: object) -> str | None:
    """Return an error string, or None if the journal dump is valid."""
    if not isinstance(records, list):
        return f"expected a JSON array, got {type(records).__name__}"
    if not records:
        return "journal is empty - the probe emitted nothing"
    last_seq: dict[int, int] = {}
    for i, record in enumerate(records):
        if not isinstance(record, dict):
            return f"record {i}: not an object"
        for field, kind in ENVELOPE.items():
            value = record.get(field)
            if kind is float and isinstance(value, int):
                value = float(value)
            if not isinstance(value, kind):
                return (
                    f"record {i} ({record.get('event')!r}): field {field!r} "
                    f"is {value!r}, expected {kind.__name__}"
                )
        if not record["event"]:
            return f"record {i}: empty event name"
        pid = record["pid"]
        if record["seq"] <= last_seq.get(pid, 0):
            return (
                f"record {i}: seq {record['seq']} not monotonic for pid {pid}"
            )
        last_seq[pid] = record["seq"]
    return None


def main() -> int:
    try:
        records = json.load(sys.stdin)
    except ValueError as exc:
        print(f"journal_checker: stdin is not JSON: {exc}", file=sys.stderr)
        return 1
    error = check(records)
    if error is not None:
        print(f"journal_checker: {error}", file=sys.stderr)
        return 1
    pids = {r["pid"] for r in records}
    events = {r["event"] for r in records}
    print(
        f"journal_checker: ok - {len(records)} records, "
        f"{len(pids)} process(es), {len(events)} distinct event(s)"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
