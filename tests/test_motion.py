"""Tests for the moving-object substrate: motions, updates, the table."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.errors import InvalidParameterError, QueryError
from repro.motion.model import Motion
from repro.motion.table import ObjectTable
from repro.motion.updates import DeleteUpdate, InsertUpdate, UpdateListener


class Recorder(UpdateListener):
    """Collects every event for assertions."""

    def __init__(self):
        self.events = []

    def on_insert(self, update):
        self.events.append(("insert", update.tnow, update.motion))

    def on_delete(self, update):
        self.events.append(("delete", update.tnow, update.motion))

    def on_advance(self, tnow):
        self.events.append(("advance", tnow, None))


class TestMotion:
    def test_position_at_reference(self):
        m = Motion(1, 5, 10.0, 20.0, 2.0, -1.0)
        assert m.position_at(5) == (10.0, 20.0)

    def test_linear_extrapolation(self):
        m = Motion(1, 5, 10.0, 20.0, 2.0, -1.0)
        assert m.position_at(8) == (16.0, 17.0)
        # Backwards extrapolation is well-defined under the linear model.
        assert m.position_at(3) == (6.0, 22.0)

    def test_positions_at_vectorised(self):
        m = Motion(0, 0, 0.0, 0.0, 1.0, 2.0)
        xs, ys = m.positions_at(np.array([0, 1, 2]))
        assert xs.tolist() == [0.0, 1.0, 2.0]
        assert ys.tolist() == [0.0, 2.0, 4.0]

    def test_speed(self):
        assert Motion(0, 0, 0, 0, 3.0, 4.0).speed == pytest.approx(5.0)

    def test_with_reference(self):
        m = Motion(7, 0, 0.0, 0.0, 1.0, 1.0).with_reference(10)
        assert m.t_ref == 10
        assert (m.x, m.y) == (10.0, 10.0)
        assert m.position_at(12) == (12.0, 12.0)

    def test_negative_oid_rejected(self):
        with pytest.raises(InvalidParameterError):
            Motion(-1, 0, 0, 0, 0, 0)

    @given(
        st.integers(0, 100),
        st.floats(-100, 100),
        st.floats(-100, 100),
        st.floats(-5, 5),
        st.floats(-5, 5),
        st.integers(0, 50),
        st.integers(0, 50),
    )
    def test_rebasing_preserves_trajectory(self, t0, x, y, vx, vy, t1, t2):
        m = Motion(0, t0, x, y, vx, vy)
        rebased = m.with_reference(t0 + t1)
        p1 = m.position_at(t0 + t1 + t2)
        p2 = rebased.position_at(t0 + t1 + t2)
        assert p1[0] == pytest.approx(p2[0], abs=1e-6)
        assert p1[1] == pytest.approx(p2[1], abs=1e-6)


class TestObjectTable:
    def test_first_report_is_insert_only(self):
        table = ObjectTable()
        rec = Recorder()
        table.add_listener(rec)
        table.report(1, 0.0, 0.0, 1.0, 1.0)
        assert [e[0] for e in rec.events] == ["insert"]

    def test_second_report_is_delete_then_insert(self):
        table = ObjectTable()
        rec = Recorder()
        table.add_listener(rec)
        table.report(1, 0.0, 0.0, 1.0, 1.0)
        table.advance_to(3)
        table.report(1, 5.0, 5.0, 0.0, 0.0)
        kinds = [e[0] for e in rec.events]
        assert kinds == ["insert", "advance", "delete", "insert"]
        delete_event = rec.events[2]
        assert delete_event[1] == 3  # retraction effective now
        assert delete_event[2].t_ref == 0  # ... of the motion registered at 0

    def test_motion_lookup(self):
        table = ObjectTable()
        table.report(4, 1.0, 2.0, 0.5, 0.5)
        m = table.motion_of(4)
        assert m is not None and (m.x, m.y) == (1.0, 2.0)
        assert table.motion_of(99) is None
        assert 4 in table
        assert len(table) == 1

    def test_retire(self):
        table = ObjectTable()
        rec = Recorder()
        table.add_listener(rec)
        table.report(1, 0.0, 0.0, 0.0, 0.0)
        table.retire(1)
        assert 1 not in table
        assert [e[0] for e in rec.events] == ["insert", "delete"]

    def test_retire_unknown_raises(self):
        with pytest.raises(QueryError):
            ObjectTable().retire(12)

    def test_clock_cannot_go_backwards(self):
        table = ObjectTable(tnow=5)
        with pytest.raises(InvalidParameterError):
            table.advance_to(4)

    def test_advance_to_same_time_is_noop(self):
        table = ObjectTable(tnow=5)
        rec = Recorder()
        table.add_listener(rec)
        table.advance_to(5)
        assert rec.events == []

    def test_positions_at(self):
        table = ObjectTable()
        table.report(0, 0.0, 0.0, 1.0, 0.0)
        table.report(1, 10.0, 10.0, 0.0, -1.0)
        positions = dict((oid, (x, y)) for oid, x, y in table.positions_at(2.0))
        assert positions[0] == (2.0, 0.0)
        assert positions[1] == (10.0, 8.0)

    def test_remove_listener(self):
        table = ObjectTable()
        rec = Recorder()
        table.add_listener(rec)
        table.remove_listener(rec)
        table.report(0, 0.0, 0.0, 0.0, 0.0)
        assert rec.events == []

    def test_report_uses_current_clock_as_reference(self):
        table = ObjectTable()
        table.advance_to(7)
        m = table.report(0, 1.0, 1.0, 0.0, 0.0)
        assert m.t_ref == 7


class TestUpdateListenerDefaults:
    def test_hooks_are_noops(self):
        listener = UpdateListener()
        m = Motion(0, 0, 0, 0, 0, 0)
        listener.on_insert(InsertUpdate(0, m))
        listener.on_delete(DeleteUpdate(0, m))
        listener.on_advance(5)
