"""Tests for the simulated storage layer (page model + buffer pool)."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.errors import InvalidParameterError
from repro.storage.buffer import BufferPool, IOStats
from repro.storage.pages import DEFAULT_PAGE_MODEL, PageModel


class TestPageModel:
    def test_default_is_4k_10ms_10pct(self):
        pm = DEFAULT_PAGE_MODEL
        assert pm.page_size == 4096
        assert pm.random_io_seconds == pytest.approx(0.010)
        assert pm.buffer_fraction == pytest.approx(0.10)

    def test_fanouts_fit_in_page(self):
        pm = PageModel(page_size=4096)
        assert pm.leaf_fanout * 40 <= 4096
        assert pm.internal_fanout * 72 <= 4096
        assert pm.leaf_fanout > pm.internal_fanout  # leaf entries are smaller

    def test_small_page_raises(self):
        with pytest.raises(InvalidParameterError):
            PageModel(page_size=100)

    def test_invalid_fractions(self):
        with pytest.raises(InvalidParameterError):
            PageModel(buffer_fraction=1.5)
        with pytest.raises(InvalidParameterError):
            PageModel(random_io_seconds=-1.0)

    def test_dataset_pages_rounds_up(self):
        pm = PageModel()
        f = pm.leaf_fanout
        assert pm.dataset_pages(f) == 1
        assert pm.dataset_pages(f + 1) == 2
        assert pm.dataset_pages(0) == 1  # at least one page

    def test_buffer_pages_is_10_percent(self):
        pm = PageModel()
        n = pm.leaf_fanout * 100  # exactly 100 pages
        assert pm.buffer_pages(n) == 10

    def test_buffer_pages_minimum_one(self):
        assert PageModel().buffer_pages(1) == 1

    def test_negative_objects_raise(self):
        with pytest.raises(InvalidParameterError):
            PageModel().dataset_pages(-1)


class TestBufferPool:
    def test_miss_then_hit(self):
        pool = BufferPool(capacity_pages=2)
        assert pool.access(1) is False
        assert pool.access(1) is True
        assert pool.stats.hits == 1
        assert pool.stats.misses == 1

    def test_lru_eviction_order(self):
        pool = BufferPool(capacity_pages=2)
        pool.access(1)
        pool.access(2)
        pool.access(1)  # 1 becomes most-recent
        pool.access(3)  # evicts 2
        assert pool.contains(1)
        assert not pool.contains(2)
        assert pool.contains(3)

    def test_capacity_respected(self):
        pool = BufferPool(capacity_pages=3)
        for page in range(10):
            pool.access(page)
        assert len(pool) == 3

    def test_invalidate(self):
        pool = BufferPool(capacity_pages=4)
        pool.access(7)
        pool.invalidate(7)
        assert not pool.contains(7)
        assert pool.access(7) is False  # now a miss again

    def test_invalidate_absent_is_noop(self):
        BufferPool(capacity_pages=1).invalidate(99)

    def test_clear(self):
        pool = BufferPool(capacity_pages=4)
        pool.access(1)
        pool.clear()
        assert len(pool) == 0

    def test_charged_seconds(self):
        pool = BufferPool(capacity_pages=1, random_io_seconds=0.01)
        pool.access(1)
        pool.access(2)
        pool.access(2)
        assert pool.charged_seconds() == pytest.approx(0.02)

    def test_reset_stats_returns_previous(self):
        pool = BufferPool(capacity_pages=1)
        pool.access(1)
        old = pool.reset_stats()
        assert old.misses == 1
        assert pool.stats.misses == 0

    def test_resize_shrink_evicts(self):
        pool = BufferPool(capacity_pages=4)
        for page in range(4):
            pool.access(page)
        pool.resize(2)
        assert len(pool) == 2
        assert pool.contains(3) and pool.contains(2)  # most recent survive

    def test_resize_invalid(self):
        with pytest.raises(InvalidParameterError):
            BufferPool(capacity_pages=1).resize(0)

    def test_invalid_construction(self):
        with pytest.raises(InvalidParameterError):
            BufferPool(capacity_pages=0)
        with pytest.raises(InvalidParameterError):
            BufferPool(capacity_pages=1, random_io_seconds=-0.1)

    def test_io_stats_ratios(self):
        stats = IOStats(hits=3, misses=1)
        assert stats.accesses == 4
        assert stats.hit_ratio == pytest.approx(0.75)
        assert IOStats().hit_ratio == 0.0

    def test_resize_shrink_evicts_in_lru_order(self):
        pool = BufferPool(capacity_pages=4)
        for page in range(4):
            pool.access(page)
        pool.access(0)  # 0 becomes most-recent; LRU order is now 1, 2, 3, 0
        pool.resize(2)
        assert not pool.contains(1) and not pool.contains(2)
        assert pool.contains(3) and pool.contains(0)

    def test_resize_grow_and_same_keep_residents(self):
        pool = BufferPool(capacity_pages=2)
        pool.access(1)
        pool.access(2)
        pool.resize(2)
        pool.resize(5)
        assert pool.contains(1) and pool.contains(2)
        assert len(pool) == 2

    def test_hit_ratio_with_zero_accesses_is_zero(self):
        pool = BufferPool(capacity_pages=1)
        assert pool.stats.hit_ratio == 0.0  # no division-by-zero

    def test_injected_fault_behaves_like_a_failed_read(self):
        from repro.core.errors import TransientIOError
        from repro.reliability.faults import FaultInjector

        faults = FaultInjector()
        pool = BufferPool(capacity_pages=4, faults=faults)
        pool.access(1)
        faults.inject_error("buffer.io")
        with pytest.raises(TransientIOError):
            pool.access(2)
        # the failed read neither counted as a miss nor became resident
        assert not pool.contains(2)
        assert pool.stats.misses == 1
        # ... and a hit never touches the device, so it cannot fault
        faults.inject_error("buffer.io")
        assert pool.access(1) is True
        faults.clear()
        assert pool.access(2) is False  # retry succeeds once the fault clears

    @given(st.lists(st.integers(0, 5), max_size=60), st.integers(1, 4))
    def test_working_set_smaller_than_capacity_always_hits_after_first(
        self, accesses, capacity
    ):
        """If distinct pages <= capacity, each page misses exactly once."""
        distinct = set(accesses)
        if len(distinct) > capacity:
            return
        pool = BufferPool(capacity_pages=capacity)
        for page in accesses:
            pool.access(page)
        assert pool.stats.misses == len(distinct)
