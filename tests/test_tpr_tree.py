"""Tests for the TPR-tree: structure, correctness against brute force, I/O."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.errors import IndexError_
from repro.core.geometry import Rect
from repro.index.split import bound_of_entries, pick_split
from repro.index.tree import TPRTree
from repro.motion.model import Motion
from repro.storage.buffer import BufferPool


def make_tree(fanout=8, horizon=20, buffer_pool=None, tnow=0):
    return TPRTree(
        horizon=horizon, buffer_pool=buffer_pool, tnow=tnow, fanout_override=fanout
    )


def random_motions(n, seed=0, tnow=0):
    gen = np.random.default_rng(seed)
    return [
        Motion(
            oid=i,
            t_ref=tnow,
            x=float(gen.uniform(0, 100)),
            y=float(gen.uniform(0, 100)),
            vx=float(gen.uniform(-2, 2)),
            vy=float(gen.uniform(-2, 2)),
        )
        for i in range(n)
    ]


def brute_range(motions, rect, qt):
    out = []
    for m in motions:
        x, y = m.position_at(qt)
        if rect.x1 <= x <= rect.x2 and rect.y1 <= y <= rect.y2:
            out.append(m.oid)
    return sorted(out)


class TestInsertBasics:
    def test_empty_tree(self):
        tree = make_tree()
        assert len(tree) == 0
        assert tree.height == 1
        assert tree.range_query(Rect(0, 0, 100, 100), 0) == []

    def test_single_insert_and_query(self):
        tree = make_tree()
        tree.insert(Motion(1, 0, 5.0, 5.0, 1.0, 0.0))
        hits = tree.range_query(Rect(0, 0, 10, 10), 0)
        assert [m.oid for m in hits] == [1]
        # At t=10 the object has moved to x=15: outside.
        assert tree.range_query(Rect(0, 0, 10, 10), 10) == []
        assert [m.oid for m in tree.range_query(Rect(10, 0, 20, 10), 10)] == [1]

    def test_duplicate_oid_rejected(self):
        tree = make_tree()
        tree.insert(Motion(1, 0, 0, 0, 0, 0))
        with pytest.raises(IndexError_):
            tree.insert(Motion(1, 0, 5, 5, 0, 0))

    def test_split_grows_height(self):
        tree = make_tree(fanout=4)
        for m in random_motions(30):
            tree.insert(m)
        assert tree.height >= 2
        assert len(tree) == 30
        tree.validate()

    def test_query_before_tnow_raises(self):
        tree = make_tree(tnow=5)
        with pytest.raises(IndexError_):
            tree.range_query(Rect(0, 0, 1, 1), 4)


class TestDelete:
    def test_delete_removes_object(self):
        tree = make_tree()
        m = Motion(3, 0, 5.0, 5.0, 0.0, 0.0)
        tree.insert(m)
        tree.delete(m)
        assert len(tree) == 0
        assert tree.range_query(Rect(0, 0, 100, 100), 0) == []

    def test_delete_unknown_raises(self):
        with pytest.raises(IndexError_):
            make_tree().delete(Motion(9, 0, 0, 0, 0, 0))

    def test_delete_all_after_splits(self):
        tree = make_tree(fanout=4)
        motions = random_motions(40, seed=3)
        for m in motions:
            tree.insert(m)
        for m in motions:
            tree.delete(m)
        assert len(tree) == 0
        tree.validate()

    def test_interleaved_insert_delete(self):
        tree = make_tree(fanout=5)
        motions = random_motions(60, seed=4)
        live = {}
        gen = np.random.default_rng(11)
        for m in motions:
            tree.insert(m)
            live[m.oid] = m
            if gen.random() < 0.4 and live:
                victim_oid = int(gen.choice(sorted(live)))
                tree.delete(live.pop(victim_oid))
        tree.validate()
        hits = tree.range_query(Rect(-1000, -1000, 1000, 1000), 0)
        assert sorted(m.oid for m in hits) == sorted(live)

    def test_root_collapse(self):
        tree = make_tree(fanout=4)
        motions = random_motions(30, seed=5)
        for m in motions:
            tree.insert(m)
        tall = tree.height
        for m in motions[:-2]:
            tree.delete(m)
        assert tree.height <= tall
        tree.validate()
        assert len(tree) == 2


class TestRangeQueryAgainstBruteForce:
    @given(
        st.integers(1, 60),
        st.integers(0, 10_000),
        st.integers(0, 15),
        st.tuples(
            st.floats(0, 80), st.floats(0, 80), st.floats(5, 60), st.floats(5, 60)
        ),
    )
    @settings(max_examples=40, deadline=None)
    def test_matches_bruteforce(self, n, seed, qt, rect_params):
        x1, y1, w, h = rect_params
        rect = Rect(x1, y1, x1 + w, y1 + h)
        motions = random_motions(n, seed=seed)
        tree = make_tree(fanout=6)
        for m in motions:
            tree.insert(m)
        hits = sorted(m.oid for m in tree.range_query(rect, qt))
        assert hits == brute_range(motions, rect, qt)

    @given(st.integers(2, 40), st.integers(0, 10_000))
    @settings(max_examples=25, deadline=None)
    def test_matches_bruteforce_after_deletes(self, n, seed):
        motions = random_motions(n, seed=seed)
        tree = make_tree(fanout=5)
        for m in motions:
            tree.insert(m)
        for m in motions[:: 2]:
            tree.delete(m)
        remaining = motions[1::2]
        rect = Rect(20, 20, 70, 70)
        for qt in (0, 7):
            hits = sorted(m.oid for m in tree.range_query(rect, qt))
            assert hits == brute_range(remaining, rect, qt)


class TestValidateInvariants:
    @given(st.integers(1, 80), st.integers(0, 10_000))
    @settings(max_examples=25, deadline=None)
    def test_structure_valid_after_bulk_insert(self, n, seed):
        tree = make_tree(fanout=5)
        for m in random_motions(n, seed=seed):
            tree.insert(m)
        tree.validate()

    def test_node_count_reasonable(self):
        tree = make_tree(fanout=8)
        for m in random_motions(100, seed=9):
            tree.insert(m)
        # With fanout 8 and min fill 40%, 100 objects need <= ~60 nodes.
        assert tree.node_count() <= 60


class TestIOAccounting:
    def test_queries_charge_buffer(self):
        pool = BufferPool(capacity_pages=2)
        tree = make_tree(fanout=4, buffer_pool=pool)
        for m in random_motions(40, seed=2):
            tree.insert(m)
        pool.reset_stats()
        tree.range_query(Rect(0, 0, 100, 100), 0)
        assert pool.stats.accesses > 0

    def test_charge_io_flag(self):
        pool = BufferPool(capacity_pages=2)
        tree = make_tree(fanout=4, buffer_pool=pool)
        for m in random_motions(20, seed=2):
            tree.insert(m)
        pool.reset_stats()
        tree.range_query(Rect(0, 0, 100, 100), 0, charge_io=False)
        assert pool.stats.accesses == 0

    def test_updates_not_charged(self):
        pool = BufferPool(capacity_pages=2)
        tree = make_tree(fanout=4, buffer_pool=pool)
        for m in random_motions(40, seed=2):
            tree.insert(m)
        # Inserts/splits never touched the pool (Section 4: maintenance I/O
        # is not counted).
        assert pool.stats.accesses == 0

    def test_repeated_query_hits_buffer(self):
        pool = BufferPool(capacity_pages=128)
        tree = make_tree(fanout=4, buffer_pool=pool)
        for m in random_motions(60, seed=2):
            tree.insert(m)
        tree.range_query(Rect(0, 0, 100, 100), 0)
        first = pool.reset_stats()
        tree.range_query(Rect(0, 0, 100, 100), 0)
        second = pool.stats
        assert first.misses > 0
        assert second.misses == 0  # everything resident now
        assert second.hits == first.accesses


class TestSplitHelper:
    def test_pick_split_sizes(self):
        motions = random_motions(10, seed=1)
        a, b = pick_split(motions, min_fill=3, t_from=0, t_to=10)
        assert len(a) >= 3 and len(b) >= 3
        assert len(a) + len(b) == 10
        assert {m.oid for m in a} | {m.oid for m in b} == {m.oid for m in motions}

    def test_pick_split_too_few_raises(self):
        with pytest.raises(IndexError_):
            pick_split(random_motions(4), min_fill=3, t_from=0, t_to=10)

    def test_split_separates_clusters(self):
        left = [Motion(i, 0, float(i), 0.0, 0.0, 0.0) for i in range(5)]
        right = [Motion(10 + i, 0, 100.0 + i, 0.0, 0.0, 0.0) for i in range(5)]
        a, b = pick_split(left + right, min_fill=2, t_from=0, t_to=10)
        groups = {frozenset(m.oid for m in a), frozenset(m.oid for m in b)}
        assert frozenset(m.oid for m in left) in groups
        assert frozenset(m.oid for m in right) in groups

    def test_bound_of_entries(self):
        motions = [Motion(0, 0, 0, 0, 0, 0), Motion(1, 0, 10, 5, 0, 0)]
        bound = bound_of_entries(motions, t_ref=0)
        r = bound.rect_at(0)
        assert (r.x1, r.y1, r.x2, r.y2) == (0, 0, 10, 5)
