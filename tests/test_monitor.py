"""Tests for the continuous PDR monitor extension."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.errors import InvalidParameterError
from repro.methods.monitor import PDRMonitor
from repro.reliability.faults import FaultInjector
from repro.reliability.validation import ReliabilityConfig
from tests.conftest import populate_clustered, small_system_config


@pytest.fixture
def monitored_server(small_server):
    populate_clustered(small_server, 100)
    return small_server


class TestConstruction:
    def test_requires_one_threshold(self, monitored_server):
        with pytest.raises(InvalidParameterError):
            PDRMonitor(monitored_server, varrho=2.0, rho=0.1)
        with pytest.raises(InvalidParameterError):
            PDRMonitor(monitored_server)

    def test_validation(self, monitored_server):
        with pytest.raises(InvalidParameterError):
            PDRMonitor(monitored_server, varrho=2.0, every=0)
        with pytest.raises(InvalidParameterError):
            PDRMonitor(monitored_server, varrho=2.0, offset=-1)
        with pytest.raises(InvalidParameterError):
            PDRMonitor(
                monitored_server,
                varrho=2.0,
                offset=monitored_server.config.prediction_window + 1,
            )


class TestPolling:
    def test_poll_produces_event(self, monitored_server):
        monitor = PDRMonitor(monitored_server, varrho=4.0, method="pa")
        event = monitor.poll()
        assert event.tnow == monitored_server.tnow
        assert event.qt == event.tnow
        assert monitor.latest is event

    def test_first_event_reports_everything_as_appeared(self, monitored_server):
        monitor = PDRMonitor(monitored_server, varrho=4.0, method="fr")
        event = monitor.poll()
        assert event.appeared_area == pytest.approx(event.regions.area(), rel=1e-9)
        assert event.vanished_area == 0.0

    def test_stable_world_second_poll_unchanged(self, monitored_server):
        monitor = PDRMonitor(monitored_server, varrho=4.0, method="fr")
        monitor.poll()
        second = monitor.poll()
        assert not second.changed

    def test_change_detection_on_new_cluster(self, monitored_server):
        monitor = PDRMonitor(monitored_server, rho=0.08, method="fr")
        monitor.poll()
        # Drop a brand-new tight cluster far from the existing ones.
        base = 1000
        for i in range(12):
            monitored_server.report(base + i, 85.0 + (i % 4) * 0.5,
                                    20.0 + (i // 4) * 0.5, 0.0, 0.0)
        event = monitor.poll()
        assert event.appeared_area > 0.0
        assert event.regions.contains_point(85.5, 20.5)

    def test_vanished_area_on_retire(self, monitored_server):
        monitor = PDRMonitor(monitored_server, rho=0.08, method="fr")
        base = 2000
        for i in range(12):
            monitored_server.report(base + i, 85.0 + (i % 4) * 0.5,
                                    20.0 + (i // 4) * 0.5, 0.0, 0.0)
        monitor.poll()
        for i in range(12):
            monitored_server.table.retire(base + i)
        event = monitor.poll()
        assert event.vanished_area > 0.0


class TestClockDriven:
    def test_evaluates_on_advance(self, monitored_server):
        monitor = PDRMonitor(monitored_server, varrho=4.0, every=2, offset=3)
        monitored_server.table.add_listener(monitor)
        monitored_server.advance_to(monitored_server.tnow + 1)
        assert len(monitor.events) == 1  # first advance always evaluates
        monitored_server.advance_to(monitored_server.tnow + 1)
        assert len(monitor.events) == 1  # within `every`
        monitored_server.advance_to(monitored_server.tnow + 1)
        assert len(monitor.events) == 2

    def test_offset_applied(self, monitored_server):
        monitor = PDRMonitor(monitored_server, varrho=4.0, offset=5)
        monitored_server.table.add_listener(monitor)
        monitored_server.advance_to(monitored_server.tnow + 1)
        event = monitor.latest
        assert event.qt == event.tnow + 5

    def test_changed_events_filter(self, monitored_server):
        monitor = PDRMonitor(monitored_server, varrho=4.0, method="fr")
        first = monitor.poll()
        monitor.poll()  # no change
        changed = monitor.changed_events()
        if first.regions.area() > 0:
            assert changed == [first]
        else:
            assert changed == []


class TestFaultTolerance:
    """The standing query must outlive failures of single evaluations."""

    @pytest.fixture
    def faulty_server(self):
        from repro import PDRServer

        faults = FaultInjector()
        server = PDRServer(
            small_system_config(),
            expected_objects=120,
            reliability=ReliabilityConfig(faults=faults),
        )
        populate_clustered(server, 100)
        return server, faults

    def test_failed_evaluation_becomes_an_event_not_an_exception(self, faulty_server):
        server, faults = faulty_server
        monitor = PDRMonitor(server, varrho=4.0, method="fr")
        ok = monitor.poll()
        assert ok.status == "ok"
        faults.inject_error("buffer.io", times=None)  # exhausts all retries
        server.buffer.clear()  # cold pool: the next FR read must touch the device
        failed = monitor.poll()
        assert failed.status == "failed"
        assert failed.result is None
        assert "TransientIOError" in failed.error
        assert len(monitor.events) == 2
        assert monitor.failed_events() == [failed]
        # failed events are not "changes": an unknown answer is not empty
        assert failed not in monitor.changed_events()

    def test_clock_driven_monitoring_survives_faults(self, faulty_server):
        server, faults = faulty_server
        monitor = PDRMonitor(server, varrho=4.0, method="fr", every=1)
        server.table.add_listener(monitor)
        faults.inject_error("buffer.io", times=None)
        server.advance_to(server.tnow + 1)  # must not unwind the advance
        assert server.tnow == 1
        assert monitor.latest.status == "failed"
        faults.clear()
        server.advance_to(server.tnow + 1)
        assert monitor.latest.status == "ok"

    def test_diff_baseline_survives_a_failed_evaluation(self, faulty_server):
        server, faults = faulty_server
        monitor = PDRMonitor(server, varrho=4.0, method="fr")
        first = monitor.poll()
        faults.inject_error("buffer.io", times=None)
        server.buffer.clear()
        assert monitor.poll().status == "failed"
        faults.clear()
        third = monitor.poll()
        # the world did not move: the diff runs against the last *known*
        # answer (first), not against the failed event's emptiness
        assert third.status == "ok"
        assert not third.changed
        assert first.regions.symmetric_difference_area(third.regions) == pytest.approx(0.0)

    def test_degraded_evaluation_is_flagged(self, faulty_server):
        server, faults = faulty_server
        monitor = PDRMonitor(server, varrho=4.0, method="fr", deadline=0.5)
        faults.inject_delay("fr.refine", seconds=0.2)
        event = monitor.poll()
        assert event.status == "degraded"
        assert event.result is not None
        assert event.result.stats.method == "pa"
        assert event.result.requested_method == "fr"
