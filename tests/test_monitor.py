"""Tests for the continuous PDR monitor extension."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.errors import InvalidParameterError
from repro.methods.monitor import PDRMonitor
from tests.conftest import populate_clustered


@pytest.fixture
def monitored_server(small_server):
    populate_clustered(small_server, 100)
    return small_server


class TestConstruction:
    def test_requires_one_threshold(self, monitored_server):
        with pytest.raises(InvalidParameterError):
            PDRMonitor(monitored_server, varrho=2.0, rho=0.1)
        with pytest.raises(InvalidParameterError):
            PDRMonitor(monitored_server)

    def test_validation(self, monitored_server):
        with pytest.raises(InvalidParameterError):
            PDRMonitor(monitored_server, varrho=2.0, every=0)
        with pytest.raises(InvalidParameterError):
            PDRMonitor(monitored_server, varrho=2.0, offset=-1)
        with pytest.raises(InvalidParameterError):
            PDRMonitor(
                monitored_server,
                varrho=2.0,
                offset=monitored_server.config.prediction_window + 1,
            )


class TestPolling:
    def test_poll_produces_event(self, monitored_server):
        monitor = PDRMonitor(monitored_server, varrho=4.0, method="pa")
        event = monitor.poll()
        assert event.tnow == monitored_server.tnow
        assert event.qt == event.tnow
        assert monitor.latest is event

    def test_first_event_reports_everything_as_appeared(self, monitored_server):
        monitor = PDRMonitor(monitored_server, varrho=4.0, method="fr")
        event = monitor.poll()
        assert event.appeared_area == pytest.approx(event.regions.area(), rel=1e-9)
        assert event.vanished_area == 0.0

    def test_stable_world_second_poll_unchanged(self, monitored_server):
        monitor = PDRMonitor(monitored_server, varrho=4.0, method="fr")
        monitor.poll()
        second = monitor.poll()
        assert not second.changed

    def test_change_detection_on_new_cluster(self, monitored_server):
        monitor = PDRMonitor(monitored_server, rho=0.08, method="fr")
        monitor.poll()
        # Drop a brand-new tight cluster far from the existing ones.
        base = 1000
        for i in range(12):
            monitored_server.report(base + i, 85.0 + (i % 4) * 0.5,
                                    20.0 + (i // 4) * 0.5, 0.0, 0.0)
        event = monitor.poll()
        assert event.appeared_area > 0.0
        assert event.regions.contains_point(85.5, 20.5)

    def test_vanished_area_on_retire(self, monitored_server):
        monitor = PDRMonitor(monitored_server, rho=0.08, method="fr")
        base = 2000
        for i in range(12):
            monitored_server.report(base + i, 85.0 + (i % 4) * 0.5,
                                    20.0 + (i // 4) * 0.5, 0.0, 0.0)
        monitor.poll()
        for i in range(12):
            monitored_server.table.retire(base + i)
        event = monitor.poll()
        assert event.vanished_area > 0.0


class TestClockDriven:
    def test_evaluates_on_advance(self, monitored_server):
        monitor = PDRMonitor(monitored_server, varrho=4.0, every=2, offset=3)
        monitored_server.table.add_listener(monitor)
        monitored_server.advance_to(monitored_server.tnow + 1)
        assert len(monitor.events) == 1  # first advance always evaluates
        monitored_server.advance_to(monitored_server.tnow + 1)
        assert len(monitor.events) == 1  # within `every`
        monitored_server.advance_to(monitored_server.tnow + 1)
        assert len(monitor.events) == 2

    def test_offset_applied(self, monitored_server):
        monitor = PDRMonitor(monitored_server, varrho=4.0, offset=5)
        monitored_server.table.add_listener(monitor)
        monitored_server.advance_to(monitored_server.tnow + 1)
        event = monitor.latest
        assert event.qt == event.tnow + 5

    def test_changed_events_filter(self, monitored_server):
        monitor = PDRMonitor(monitored_server, varrho=4.0, method="fr")
        first = monitor.poll()
        monitor.poll()  # no change
        changed = monitor.changed_events()
        if first.regions.area() > 0:
            assert changed == [first]
        else:
            assert changed == []
