"""Seeded chaos: randomized fault schedules with invariant oracles.

The acceptance scenario of the chaos work: a fixed-seed schedule of 200+
events — with injected bit-flips and crashes on both sides of the
replication group — must end with every invariant oracle green and a
state directory that ``repro verify`` accepts.  Determinism (same seed,
same schedule) and the ddmin shrinker are covered separately so a CI
failure always comes with a replayable minimal reproducer.
"""

from __future__ import annotations

import json
import os

import pytest

from repro import cli
from repro.reliability.chaos import (
    DISRUPTIONS,
    ChaosConfig,
    ChaosScheduler,
    ddmin,
)


@pytest.fixture
def workdir(tmp_path):
    return str(tmp_path / "chaos")


class TestSchedule:
    def test_same_seed_same_schedule(self, workdir):
        a = ChaosScheduler(ChaosConfig(seed=123), workdir).build_schedule()
        b = ChaosScheduler(ChaosConfig(seed=123), workdir).build_schedule()
        assert a == b

    def test_different_seeds_differ(self, workdir):
        a = ChaosScheduler(ChaosConfig(seed=1), workdir).build_schedule()
        b = ChaosScheduler(ChaosConfig(seed=2), workdir).build_schedule()
        assert a != b

    def test_minimum_disruptions_are_forced(self, workdir):
        config = ChaosConfig(seed=5, events=30, min_disruptions=6)
        events = ChaosScheduler(config, workdir).build_schedule()
        assert sum(1 for e in events if e[0] in DISRUPTIONS) >= 6

    def test_events_are_json_serialisable(self, workdir):
        events = ChaosScheduler(ChaosConfig(seed=9, events=50), workdir).build_schedule()
        assert json.loads(json.dumps(events)) == [list(e) for e in events]


class TestCampaign:
    def test_fixed_seed_campaign_ends_green(self, workdir):
        """The acceptance run: >= 200 events, >= 3 injected corruptions
        and crashes across primary and replicas, every oracle green, and
        ``repro verify`` exits 0 on the surviving state directory."""
        config = ChaosConfig(seed=42, events=220, replicas=2)
        result = ChaosScheduler(config, workdir).run()
        assert result.ok, result.format_reproducer()
        assert result.events_run == 220
        disruptions = (
            result.stats.get("flips", 0)
            + result.stats.get("failovers", 0)
            + result.stats.get("replica_crashes", 0)
        )
        assert result.stats.get("flips", 0) >= 3
        assert result.stats.get("failovers", 0) >= 1
        assert result.stats.get("replica_crashes", 0) >= 1
        assert disruptions >= config.min_disruptions
        assert result.stats.get("oracle_sweeps", 0) > 0
        assert cli.main(["verify", "--state-dir", result.final_state_dir]) == 0

    def test_execute_is_deterministic(self, workdir):
        """Replaying the same schedule gives the same stats — the
        property every shrunk reproducer depends on."""
        sched = ChaosScheduler(ChaosConfig(seed=7, events=60), workdir)
        events = sched.build_schedule()
        f1, s1, _ = sched.execute(events)
        f2, s2, _ = sched.execute(events)
        assert (f1 is None) == (f2 is None)
        assert s1 == s2

    def test_flip_counter_resets_between_episodes(self, workdir):
        sched = ChaosScheduler(ChaosConfig(seed=7, events=60), workdir)
        events = sched.build_schedule()
        _, s1, _ = sched.execute(events)
        _, s2, _ = sched.execute(events)
        # a shared injector without reset_counters() would accumulate
        assert s1["flips"] == s2["flips"]


class TestDdmin:
    def fails_with_markers(self, events):
        return sum(1 for e in events if e[0] == "marker") >= 2

    def test_shrinks_to_the_minimal_pair(self):
        noise = [("noise", i) for i in range(40)]
        events = noise[:13] + [("marker", 1)] + noise[13:29] + [("marker", 2)] + noise[29:]
        shrunk = ddmin(events, self.fails_with_markers)
        assert shrunk == [("marker", 1), ("marker", 2)]

    def test_respects_the_run_budget(self):
        calls = []

        def fails(events):
            calls.append(1)
            return self.fails_with_markers(events)

        events = [("marker", i) for i in range(64)]
        ddmin(events, fails, max_runs=10)
        assert len(calls) <= 10

    def test_single_event_failures_shrink_to_one(self):
        events = [("noise", i) for i in range(20)] + [("marker", 0)]
        shrunk = ddmin(events, lambda ev: any(e[0] == "marker" for e in ev))
        assert shrunk == [("marker", 0)]


class TestChaosCLI:
    def test_green_run_exits_zero(self, capsys):
        assert cli.main(["chaos", "--seed", "3", "--events", "60"]) == 0
        out = capsys.readouterr().out
        assert "all oracles green" in out
        assert "seed 3" in out

    def test_repro_out_written_only_on_failure(self, tmp_path, capsys):
        out_path = str(tmp_path / "repro.json")
        assert cli.main([
            "chaos", "--seed", "3", "--events", "60", "--repro-out", out_path,
        ]) == 0
        assert not os.path.exists(out_path)
