"""SLO burn-rate monitor: window math vs a brute-force oracle, crossings.

The monitor's ring buckets are an optimization over the obvious
implementation — "keep every (second, outcome) event and count the last
W seconds" — so the property test drives both against the same random
event stream on a fake clock and demands identical (total, bad) counts
per window, which pins the burn rates too.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.telemetry.journal import Journal
from repro.telemetry.slo import BAD_OUTCOMES, SLOMonitor


class FakeClock:
    def __init__(self) -> None:
        self.now = 1000.0

    def __call__(self) -> float:
        return self.now


def make_monitor(clock, **kwargs) -> SLOMonitor:
    kwargs.setdefault("journal", Journal())
    return SLOMonitor(clock=clock, **kwargs)


def test_classify_folds_latency_into_slow():
    monitor = make_monitor(FakeClock(), latency_slo_seconds=0.5)
    assert monitor.classify(0.1, "ok") == "ok"
    assert monitor.classify(0.7, "ok") == "slow"
    assert monitor.classify(None, "ok") == "ok"
    assert monitor.classify(0.1, "error") == "error"  # latency can't save it
    assert monitor.classify(None, "shed") == "shed"


def test_burn_rate_is_bad_fraction_over_budget():
    clock = FakeClock()
    monitor = make_monitor(clock, objective=0.99, windows=(5, 60, 300))
    for _ in range(99):
        monitor.record(0.001, "ok")
    monitor.record(outcome="error")
    stats = monitor.snapshot()[5]
    assert stats["total"] == 100 and stats["bad"] == 1
    # 1% bad against a 1% budget = burn rate exactly 1.0
    assert stats["bad_fraction"] == pytest.approx(0.01)
    assert stats["burn_rate"] == pytest.approx(1.0)
    assert stats["budget_remaining"] == pytest.approx(0.0)


@settings(max_examples=25, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**32 - 1),
    n_events=st.integers(min_value=1, max_value=400),
)
def test_window_counts_match_brute_force_oracle(seed, n_events):
    rng = random.Random(seed)
    clock = FakeClock()
    windows = (5, 30, 60)
    monitor = make_monitor(clock, windows=windows)
    events = []  # (second, bad) — the oracle's flat log
    for _ in range(n_events):
        clock.now += rng.choice([0.0, 0.1, 0.4, 1.0, 3.0, 7.0])
        outcome = rng.choice(["ok", "ok", "ok", "slow", "error", "shed"])
        monitor.record(outcome=outcome)
        events.append((int(clock.now), outcome in BAD_OUTCOMES))
    sec = int(clock.now)
    snapshot = monitor.snapshot()
    for window in windows:
        lo = sec - window + 1
        total = sum(1 for s, _ in events if lo <= s <= sec)
        bad = sum(1 for s, b in events if lo <= s <= sec and b)
        assert snapshot[window]["total"] == total, (window, seed)
        assert snapshot[window]["bad"] == bad, (window, seed)
        want_burn = (bad / total) / monitor.budget if total else 0.0
        assert snapshot[window]["burn_rate"] == pytest.approx(want_burn)


def test_old_buckets_age_out_of_every_window():
    clock = FakeClock()
    monitor = make_monitor(clock, windows=(5, 30, 60))
    for _ in range(20):
        monitor.record(outcome="error")
    assert monitor.snapshot()[5]["bad"] == 20
    clock.now += 61.0  # past the longest window
    monitor.record(outcome="ok")
    snapshot = monitor.snapshot()
    for window in (5, 30, 60):
        assert snapshot[window]["total"] == 1
        assert snapshot[window]["bad"] == 0


def test_fast_burn_crossing_requires_confirmation_and_journals():
    clock = FakeClock()
    journal = Journal()
    monitor = make_monitor(
        clock, windows=(5, 60, 300), journal=journal, min_events=10
    )
    # a hot five seconds: all errors, enough volume in both short windows
    for _ in range(30):
        monitor.record(outcome="error")
        clock.now += 0.2
    clock.now += 1.0
    monitor.record(outcome="error")  # crossing check runs on a new second
    assert monitor.burning["fast"]
    events = [r["event"] for r in journal.recent()]
    assert "slo.fast_burn" in events
    # recovery: a quiet minute of successes clears the alarm
    for _ in range(120):
        monitor.record(0.001, "ok")
        clock.now += 0.5
    assert not monitor.burning["fast"]
    events = [r["event"] for r in journal.recent()]
    assert "slo.burn_ok" in events


def test_min_events_floor_keeps_idle_windows_quiet():
    clock = FakeClock()
    journal = Journal()
    monitor = make_monitor(clock, journal=journal, min_events=10)
    # one unlucky query in an otherwise idle window: burn is huge but
    # the floor keeps the alarm silent
    monitor.record(outcome="error")
    clock.now += 1.0
    monitor.record(outcome="error")
    assert not monitor.burning["fast"]
    assert not monitor.burning["slow"]
    assert all(
        not r["event"].startswith("slo.") for r in journal.recent()
    )


def test_slow_burn_fires_on_the_long_window():
    clock = FakeClock()
    journal = Journal()
    monitor = make_monitor(
        clock, windows=(5, 60, 300), journal=journal, min_events=10
    )
    # sustained 10% errors over minutes: slow burn (10x budget) without
    # the short-window intensity of a fast burn
    for i in range(300):
        monitor.record(outcome="error" if i % 10 == 0 else "ok")
        clock.now += 1.0
    assert monitor.burning["slow"]
    assert "slo.slow_burn" in [r["event"] for r in journal.recent()]


def test_record_returns_the_classified_outcome():
    monitor = make_monitor(FakeClock(), latency_slo_seconds=0.5)
    assert monitor.record(0.7, "ok") == "slow"
    assert monitor.record(0.1, "ok") == "ok"
    assert monitor.record(outcome="shed") == "shed"
