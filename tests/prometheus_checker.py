"""A Prometheus text-exposition (0.0.4) line-format checker.

Used two ways:

* imported by ``tests/test_metrics_export.py`` and the CI metrics-smoke
  job to validate ``repro metrics --format prometheus`` output, and
* standalone — ``python tests/prometheus_checker.py [FILE]`` reads a
  scrape from FILE (or stdin) and exits non-zero with the problems
  printed, one per line.

The checker is intentionally stricter than "Prometheus would accept it":
because the telemetry layer declares every metric family at import time,
``# HELP``/``# TYPE`` headers render even for families that never saw an
event — so for the *required* families (``--require`` /
``required_families=``) a header alone is not enough; at least one actual
sample line must be present.
"""

from __future__ import annotations

import re
import sys
from typing import Dict, Iterable, List, Set

__all__ = ["check_prometheus_text", "main"]

_METRIC_NAME = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_NAME = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")
# name, optional {labels}, value, optional timestamp
_SAMPLE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>.*)\})?"
    r" (?P<value>[^ ]+)"
    r"(?: (?P<timestamp>-?\d+))?$"
)
_LABEL_PAIR = re.compile(
    r'(?P<name>[a-zA-Z_][a-zA-Z0-9_]*)="(?P<value>(?:[^"\\]|\\.)*)"'
)
_VALID_TYPES = {"counter", "gauge", "histogram", "summary", "untyped"}
_HISTOGRAM_SUFFIXES = ("_bucket", "_sum", "_count")


def _parse_value(text: str) -> float:
    """A sample value: decimal float or the spec's NaN/+Inf/-Inf."""
    if text in ("NaN", "+Inf", "-Inf"):
        return {"NaN": float("nan"), "+Inf": float("inf"), "-Inf": float("-inf")}[text]
    return float(text)  # raises ValueError on garbage


def _parse_labels(raw: str, problems: List[str], lineno: int) -> Dict[str, str]:
    """Validate the inside of ``{...}`` and return the label mapping."""
    labels: Dict[str, str] = {}
    consumed = 0
    for match in _LABEL_PAIR.finditer(raw):
        # between pairs only a comma (plus optional trailing comma) is legal
        gap = raw[consumed:match.start()]
        if gap not in ("", ","):
            problems.append(f"line {lineno}: malformed label section {raw!r}")
            return labels
        name = match.group("name")
        if name in labels:
            problems.append(f"line {lineno}: duplicate label {name!r}")
        labels[name] = match.group("value")
        consumed = match.end()
    if raw[consumed:] not in ("", ","):
        problems.append(f"line {lineno}: malformed label section {raw!r}")
    return labels


def _family_of(sample_name: str, types: Dict[str, str]) -> str:
    """Map a sample name back to its family (histogram suffixes fold in)."""
    for suffix in _HISTOGRAM_SUFFIXES:
        if sample_name.endswith(suffix):
            base = sample_name[: -len(suffix)]
            if types.get(base) == "histogram":
                return base
    return sample_name


def check_prometheus_text(
    text: str, required_families: Iterable[str] = ()
) -> List[str]:
    """Validate a scrape; returns a list of problems (empty == clean).

    Checks line grammar (HELP/TYPE headers, sample syntax, label syntax,
    value syntax), header discipline (TYPE at most once per family, no
    samples before their TYPE), histogram shape (cumulative buckets
    non-decreasing, ``+Inf`` bucket equals ``_count``), and — the part CI
    cares about — that every family in ``required_families`` has at
    least one actual sample line, not just headers.
    """
    problems: List[str] = []
    types: Dict[str, str] = {}
    helped: Set[str] = set()
    sampled: Set[str] = set()
    # histogram shape bookkeeping: family -> labelset-key -> data
    buckets: Dict[str, Dict[str, List[float]]] = {}
    inf_buckets: Dict[str, Dict[str, float]] = {}
    counts: Dict[str, Dict[str, float]] = {}

    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        if line.startswith("# HELP "):
            parts = line[len("# HELP "):].split(" ", 1)
            name = parts[0]
            if not _METRIC_NAME.match(name):
                problems.append(f"line {lineno}: bad metric name in HELP: {name!r}")
            elif name in helped:
                problems.append(f"line {lineno}: duplicate HELP for {name}")
            helped.add(name)
            continue
        if line.startswith("# TYPE "):
            parts = line[len("# TYPE "):].split(" ")
            if len(parts) != 2:
                problems.append(f"line {lineno}: malformed TYPE line: {line!r}")
                continue
            name, kind = parts
            if not _METRIC_NAME.match(name):
                problems.append(f"line {lineno}: bad metric name in TYPE: {name!r}")
            if kind not in _VALID_TYPES:
                problems.append(f"line {lineno}: unknown metric type {kind!r}")
            if name in types:
                problems.append(f"line {lineno}: duplicate TYPE for {name}")
            types[name] = kind
            continue
        if line.startswith("#"):
            continue  # comment
        match = _SAMPLE.match(line)
        if match is None:
            problems.append(f"line {lineno}: unparseable sample line: {line!r}")
            continue
        name = match.group("name")
        try:
            value = _parse_value(match.group("value"))
        except ValueError:
            problems.append(
                f"line {lineno}: bad sample value {match.group('value')!r}"
            )
            continue
        labels = {}
        if match.group("labels") is not None:
            labels = _parse_labels(match.group("labels"), problems, lineno)
        family = _family_of(name, types)
        if family not in types:
            problems.append(f"line {lineno}: sample {name} before any TYPE header")
        sampled.add(family)
        if types.get(family) == "histogram":
            key = ",".join(
                f"{k}={v}" for k, v in sorted(labels.items()) if k != "le"
            )
            if name.endswith("_bucket"):
                le = labels.get("le")
                if le is None:
                    problems.append(f"line {lineno}: histogram bucket without le")
                elif le == "+Inf":
                    inf_buckets.setdefault(family, {})[key] = value
                else:
                    buckets.setdefault(family, {}).setdefault(key, []).append(value)
            elif name.endswith("_count"):
                counts.setdefault(family, {})[key] = value

    for family, by_series in buckets.items():
        for key, cumulative in by_series.items():
            if any(hi < lo for lo, hi in zip(cumulative, cumulative[1:])):
                problems.append(
                    f"{family}{{{key}}}: cumulative bucket counts decrease"
                )
            inf = inf_buckets.get(family, {}).get(key)
            count = counts.get(family, {}).get(key)
            if inf is None:
                problems.append(f"{family}{{{key}}}: missing +Inf bucket")
            elif count is not None and inf != count:
                problems.append(
                    f"{family}{{{key}}}: +Inf bucket {inf} != count {count}"
                )

    for family in required_families:
        if family not in types:
            problems.append(f"required family {family} has no TYPE header")
        elif family not in sampled:
            problems.append(f"required family {family} has no sample lines")
    return problems


def main(argv=None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    require: List[str] = []
    paths: List[str] = []
    it = iter(argv)
    for arg in it:
        if arg == "--require":
            require.extend(next(it, "").split(","))
        elif arg.startswith("--require="):
            require.extend(arg.split("=", 1)[1].split(","))
        else:
            paths.append(arg)
    if not require:
        # default to the deployment contract when run from the repo
        try:
            from repro.telemetry.exporters import REQUIRED_FAMILIES
            require = list(REQUIRED_FAMILIES)
        except ImportError:
            require = []
    if paths:
        with open(paths[0], "r", encoding="utf-8") as fh:
            text = fh.read()
    else:
        text = sys.stdin.read()
    problems = check_prometheus_text(text, required_families=[r for r in require if r])
    for problem in problems:
        print(problem, file=sys.stderr)
    if problems:
        print(f"FAIL: {len(problems)} problem(s)", file=sys.stderr)
        return 1
    print("OK: scrape is well-formed and all required families have samples")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
