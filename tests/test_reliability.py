"""Reliability layer: ingestion quarantine, fault injection, deadlines.

Covers the serving-path half of the fault-tolerance work: boundary
validation with the dead-letter queue, the deterministic fault injector,
cooperative query deadlines with the ``fr -> pa -> dh-optimistic``
degradation ladder, retry-with-backoff for transient faults, and the
all-listeners-notified guarantee of the update fan-out.  The durability
half (WAL, checkpoints, crash recovery) lives in ``test_recovery.py``.
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from tests.conftest import populate_clustered, small_system_config
from repro import PDRServer
from repro.core.errors import (
    DeadlineExceededError,
    InvalidParameterError,
    ListenerFanoutError,
    TransientFaultError,
    TransientIOError,
)
from repro.motion.updates import UpdateListener, dispatch
from repro.reliability.deadline import (
    DEGRADATION_LADDER,
    Deadline,
    ladder_for,
    run_with_retries,
)
from repro.reliability.faults import (
    FaultInjector,
    InjectedCrashError,
    VirtualClock,
)
from repro.reliability.validation import (
    DeadLetterQueue,
    ReliabilityConfig,
    ReportPolicy,
    ReportValidator,
)


def make_server(faults=None, policy=None, **kwargs) -> PDRServer:
    rc = ReliabilityConfig(policy=policy or ReportPolicy(), faults=faults, **kwargs)
    server = PDRServer(small_system_config(), expected_objects=200, reliability=rc)
    return server


# ----------------------------------------------------------------------
# ingestion hardening
# ----------------------------------------------------------------------
class TestReportValidation:
    def test_rejects_every_documented_reason(self):
        server = make_server(policy=ReportPolicy(max_speed=5.0))
        server.advance_to(3)
        populate_clustered(server, 20)
        before = server.object_count()

        assert server.report(90, float("nan"), 5.0, 0.0, 0.0) is None
        assert server.report(91, 5.0, float("inf"), 0.0, 0.0) is None
        assert server.report(92, 250.0, 5.0, 0.0, 0.0) is None
        assert server.report(93, 5.0, 5.0, 30.0, 0.0) is None
        assert server.report(-7, 5.0, 5.0, 0.0, 0.0) is None
        assert server.report(True, 5.0, 5.0, 0.0, 0.0) is None
        assert server.report("car", 5.0, 5.0, 0.0, 0.0) is None
        assert server.report(94, 5.0, 5.0, 0.0, 0.0, t=1) is None
        assert server.report(95, 5.0, 5.0, 0.0, 0.0, t=9) is None
        assert server.retire(999) is False

        counts = server.dead_letters.counts
        assert counts["nonfinite"] == 2
        assert counts["out_of_bounds"] == 1
        assert counts["over_speed"] == 1
        assert counts["bad_oid"] == 3
        assert counts["stale"] == 1
        assert counts["future"] == 1
        assert counts["unknown_oid"] == 1
        assert server.dead_letters.total == 10
        # none of the rejects leaked into any maintained structure
        assert server.object_count() == before
        assert len(server.tree) == before
        assert server.audit() == []

    def test_accepted_report_with_explicit_current_timestamp(self):
        server = make_server()
        server.advance_to(5)
        assert server.report(1, 10.0, 10.0, 0.5, 0.5, t=5) is not None
        assert server.dead_letters.total == 0

    def test_reject_records_carry_verdict_details(self):
        server = make_server()
        server.report(1, -3.0, 5.0, 0.0, 0.0)
        reject = server.dead_letters.latest
        assert reject.reason == "out_of_bounds"
        assert "(-3.0, 5.0)" in reject.detail
        assert reject.oid == 1 and reject.tnow == 0

    def test_duplicate_rejection_is_opt_in(self):
        # default: a re-report within the tick is the documented
        # delete+insert protocol and must go through
        server = make_server()
        assert server.report(1, 10.0, 10.0, 0.0, 0.0) is not None
        assert server.report(1, 20.0, 20.0, 0.0, 0.0) is not None
        assert server.dead_letters.total == 0
        assert server.object_count() == 1

        strict = make_server(policy=ReportPolicy(reject_duplicates=True))
        assert strict.report(1, 10.0, 10.0, 0.0, 0.0) is not None
        assert strict.report(1, 20.0, 20.0, 0.0, 0.0) is None
        assert strict.dead_letters.counts["duplicate"] == 1
        # the duplicate window resets at the next tick
        strict.advance_to(1)
        assert strict.report(1, 30.0, 30.0, 0.0, 0.0) is not None

    def test_speed_uses_euclidean_norm(self):
        validator = ReportValidator(
            ReportPolicy(max_speed=5.0), small_system_config().domain
        )
        ok = validator.validate(1, 50.0, 50.0, 3.0, 4.0, None, 0, set())
        assert ok is None  # speed exactly 5.0
        bad = validator.validate(1, 50.0, 50.0, 3.0, 4.1, None, 0, set())
        assert bad is not None and bad[0] == "over_speed"
        assert f"{math.hypot(3.0, 4.1):.3f}" in bad[1]


class TestDeadLetterQueue:
    def test_bounded_entries_unbounded_counters(self):
        server = make_server(dead_letter_capacity=4)
        for i in range(9):
            server.report(i, -1.0, -1.0, 0.0, 0.0)
        assert len(server.dead_letters) == 4  # queue wrapped
        assert server.dead_letters.total == 9  # counters did not
        assert server.dead_letters.counts["out_of_bounds"] == 9
        # the queue keeps the most recent rejects
        assert [r.oid for r in server.dead_letters] == [5, 6, 7, 8]

    def test_capacity_must_be_positive(self):
        with pytest.raises(InvalidParameterError):
            DeadLetterQueue(capacity=0)


# ----------------------------------------------------------------------
# fault injector
# ----------------------------------------------------------------------
class TestFaultInjector:
    def test_unarmed_hit_only_counts(self):
        faults = FaultInjector()
        for _ in range(3):
            faults.hit("some.site")
        assert faults.hits("some.site") == 3

    def test_error_fires_after_skip_and_respects_times(self):
        faults = FaultInjector()
        faults.inject_error("s", after=2, times=2)
        faults.hit("s")
        faults.hit("s")
        with pytest.raises(TransientIOError):
            faults.hit("s")
        with pytest.raises(TransientIOError):
            faults.hit("s")
        faults.hit("s")  # rule exhausted

    def test_delay_advances_the_virtual_clock(self):
        faults = FaultInjector()
        faults.inject_delay("io", seconds=0.25)
        t0 = faults.clock.now()
        faults.hit("io")
        assert faults.clock.now() == pytest.approx(t0 + 0.25)

    def test_delay_fires_before_error_at_same_site(self):
        faults = FaultInjector()
        faults.inject_delay("io", seconds=0.1)
        faults.inject_error("io")
        t0 = faults.clock.now()
        with pytest.raises(TransientIOError):
            faults.hit("io")
        assert faults.clock.now() == pytest.approx(t0 + 0.1)

    def test_crash_is_not_an_exception(self):
        faults = FaultInjector()
        faults.inject_crash("wal")
        with pytest.raises(InjectedCrashError):
            try:
                faults.hit("wal")
            except Exception:  # noqa: BLE001 - the point of the test
                pytest.fail("a crash must not be catchable as Exception")

    def test_clear_disarms_but_keeps_counters(self):
        faults = FaultInjector()
        faults.inject_error("s", times=None)
        with pytest.raises(TransientIOError):
            faults.hit("s")
        faults.clear("s")
        faults.hit("s")
        assert faults.hits("s") == 2


# ----------------------------------------------------------------------
# deadlines, retries, the degradation ladder
# ----------------------------------------------------------------------
class TestDeadline:
    def test_expiry_on_virtual_clock(self):
        clock = VirtualClock()
        d = Deadline(1.0, clock)
        d.check()
        clock.sleep(0.6)
        assert d.remaining() == pytest.approx(0.4)
        clock.sleep(0.5)
        assert d.expired
        with pytest.raises(DeadlineExceededError, match="at fr.refine"):
            d.check("fr.refine")

    def test_sliced_never_extends_the_parent(self):
        clock = VirtualClock()
        d = Deadline(1.0, clock)
        assert d.sliced(0.5).remaining() == pytest.approx(0.5)
        assert d.sliced(5.0).remaining() == pytest.approx(1.0)

    def test_nonpositive_budget_rejected(self):
        with pytest.raises(InvalidParameterError):
            Deadline(0.0, VirtualClock())


class TestRetries:
    def test_transient_faults_retried_with_exponential_backoff(self):
        clock = VirtualClock()
        calls = []

        def flaky():
            calls.append(clock.now())
            if len(calls) < 3:
                raise TransientIOError("flaky")
            return "ok"

        result, attempts = run_with_retries(flaky, retries=3, backoff_seconds=0.1, clock=clock)
        assert result == "ok" and attempts == 2
        assert calls == [pytest.approx(0.0), pytest.approx(0.1), pytest.approx(0.3)]

    def test_exhausted_retries_reraise(self):
        def always():
            raise TransientIOError("down")

        with pytest.raises(TransientFaultError):
            run_with_retries(always, retries=1, backoff_seconds=0.0, clock=VirtualClock())

    def test_non_transient_errors_not_retried(self):
        calls = []

        def broken():
            calls.append(1)
            raise InvalidParameterError("bad")

        with pytest.raises(InvalidParameterError):
            run_with_retries(broken, retries=5, backoff_seconds=0.0, clock=VirtualClock())
        assert len(calls) == 1


class TestLadder:
    def test_ladder_shapes(self, small_config):
        q = lambda l: type("Q", (), {"l": l})()  # noqa: E731 - only .l is read
        assert ladder_for("fr", q(10.0), 10.0) == list(DEGRADATION_LADDER)
        assert ladder_for("pa", q(10.0), 10.0) == ["pa", "dh-optimistic"]
        assert ladder_for("dh-optimistic", q(10.0), 10.0) == ["dh-optimistic"]
        assert ladder_for("dh-pessimistic", q(10.0), 10.0) == ["dh-pessimistic"]
        assert ladder_for("bruteforce", q(10.0), 10.0) == ["bruteforce", "dh-optimistic"]
        # PA cannot answer a different l: its rung is dropped
        assert ladder_for("fr", q(7.0), 10.0) == ["fr", "dh-optimistic"]


class TestQueryDegradation:
    @pytest.fixture
    def loaded(self):
        faults = FaultInjector()
        server = make_server(faults=faults, policy=ReportPolicy())
        server.advance_to(1)
        populate_clustered(server, 120)
        return server, faults

    def test_no_deadline_is_undegraded(self, loaded):
        server, _ = loaded
        result = server.query("fr", qt=2, rho=0.004)
        assert result.stats.method == "fr"
        assert result.requested_method == "fr"
        assert result.degraded is False

    def test_fast_path_meets_deadline_without_degrading(self, loaded):
        server, _ = loaded
        result = server.query("fr", qt=2, rho=0.004, deadline=100.0)
        assert result.stats.method == "fr" and not result.degraded

    def test_slow_fr_degrades_to_pa_within_budget(self, loaded):
        # the acceptance scenario: FR is delayed past its slice, the
        # ladder answers with PA, inside the budget, flagged degraded
        server, faults = loaded
        faults.inject_delay("fr.refine", seconds=0.2)
        result = server.query("fr", qt=2, rho=0.004, deadline=0.5)
        assert result.stats.method == "pa"
        assert result.requested_method == "fr"
        assert result.degraded is True
        assert result.stats.extra["deadline_spent"] <= 0.5
        assert result.stats.extra["ladder_fallbacks"] == 1.0

    def test_slow_fr_and_pa_degrade_to_histogram_bound(self, loaded):
        server, faults = loaded
        faults.inject_delay("fr.refine", seconds=0.2)
        faults.inject_delay("pa.query", seconds=1.0)
        result = server.query("fr", qt=2, rho=0.004, deadline=0.5)
        assert result.stats.method == "dh-optimistic"
        assert result.degraded is True
        # the optimistic bound is a superset of the exact answer
        exact = server.query("fr", qt=2, rho=0.004)
        from repro.metrics.raster import RasterMeasure

        raster = RasterMeasure(server.config.domain, resolution=400)
        m_exact = raster.rasterize(exact.regions)
        m_bound = raster.rasterize(result.regions)
        assert not (m_exact & ~m_bound).any()

    def test_degraded_pa_answer_matches_direct_pa(self, loaded):
        server, faults = loaded
        faults.inject_delay("fr.refine", seconds=0.2)
        degraded = server.query("fr", qt=2, rho=0.004, deadline=0.5)
        direct = server.query("pa", qt=2, rho=0.004)
        assert {r.as_tuple() for r in degraded.regions} == {
            r.as_tuple() for r in direct.regions
        }

    def test_transient_io_faults_retried_transparently(self, loaded):
        server, faults = loaded
        faults.inject_error("buffer.io", times=2)
        result = server.query("fr", qt=2, rho=0.004)
        assert result.stats.method == "fr" and not result.degraded
        assert result.stats.extra == result.stats.extra  # no crash markers

    def test_transient_faults_inside_ladder_fall_through(self, loaded):
        server, faults = loaded
        faults.inject_error("fr.refine", times=None)  # FR permanently down
        result = server.query("fr", qt=2, rho=0.004, deadline=10.0, retries=1)
        assert result.stats.method == "pa"
        assert result.degraded is True

    def test_retries_exhausted_without_deadline_raises(self, loaded):
        server, faults = loaded
        faults.inject_error("buffer.io", times=None)
        with pytest.raises(TransientFaultError):
            server.query("fr", qt=2, rho=0.004, retries=2)

    def test_deadline_spent_uses_server_clock(self, loaded):
        server, faults = loaded
        faults.inject_delay("pa.query", seconds=0.3)
        result = server.query("pa", qt=2, rho=0.004, deadline=2.0)
        assert result.stats.extra["deadline_spent"] >= 0.3


# ----------------------------------------------------------------------
# update fan-out hardening
# ----------------------------------------------------------------------
class _ExplodingListener(UpdateListener):
    def __init__(self):
        self.inserts = 0

    def on_insert(self, update):
        self.inserts += 1
        raise RuntimeError("listener bug")


class _CountingListener(UpdateListener):
    def __init__(self):
        self.inserts = 0
        self.deletes = 0

    def on_insert(self, update):
        self.inserts += 1

    def on_delete(self, update):
        self.deletes += 1


class TestListenerFanout:
    def test_dispatch_notifies_all_listeners_despite_failures(self):
        bad, good = _ExplodingListener(), _CountingListener()
        with pytest.raises(ListenerFanoutError) as info:
            dispatch([bad, good], "on_insert", object())
        assert good.inserts == 1  # still notified
        assert len(info.value.failures) == 1
        assert "listener bug" in str(info.value)

    def test_server_structures_stay_consistent_when_a_listener_fails(self):
        server = make_server()
        bad = _ExplodingListener()
        server.table.add_listener(bad)
        with pytest.raises(ListenerFanoutError):
            server.report(1, 10.0, 10.0, 0.5, 0.0)
        # the report reached the table, tree, histogram and PA anyway
        assert server.object_count() == 1
        assert len(server.tree) == 1
        assert server.audit() == []
        # re-reporting (delete+insert) also survives the bad listener
        with pytest.raises(ListenerFanoutError):
            server.report(1, 20.0, 20.0, 0.0, 0.5)
        assert server.object_count() == 1
        assert server.audit() == []

    def test_crash_during_fanout_propagates_immediately(self):
        faults = FaultInjector()

        class CrashingListener(UpdateListener):
            def on_insert(self, update):
                faults.inject_crash("x")
                faults.hit("x")

        notified = _CountingListener()
        with pytest.raises(InjectedCrashError):
            dispatch([CrashingListener(), notified], "on_insert", object())
        assert notified.inserts == 0  # a dead process notifies nobody


class TestReliabilityReport:
    def test_operator_counters(self):
        server = make_server()
        server.report(1, -5.0, 0.0, 0.0, 0.0)
        report = server.reliability_report()
        assert report["dead_letter_total"] == 1
        assert report["dead_letter_counts"] == {"out_of_bounds": 1}
        assert report["wal_lsn"] is None  # durability off
