"""State integrity: checksummed WAL framing, scrubbing, anti-entropy repair.

The acceptance scenario of the integrity work, in miniature: flip one
byte of a WAL payload by hand and ``repro verify`` must exit non-zero
naming the damaged segment; quarantine-and-repair from a caught-up
replica must then restore bit-exact state, while a *torn tail* keeps
being truncated (never quarantined) and legacy unframed logs keep
replaying.  Also covered here: the ``*.tmp``-hardening of checkpoint
recovery and the fault injector's counter-reset semantics the chaos
scheduler depends on.
"""

from __future__ import annotations

import json
import os

import numpy as np
import pytest

from tests.conftest import small_system_config
from tests.test_recovery import (
    N_OBJECTS,
    OPS,
    apply_op,
    assert_states_match,
    durable_config,
    reference,  # noqa: F401  (module-scoped fixture re-used here)
)
from tests.test_replication import apply_group_op, make_group
from repro import PDRServer, cli
from repro.core.errors import (
    CorruptionError,
    IntegrityError,
    RepairError,
    TransientIOError,
)
from repro.reliability import FaultInjector
from repro.reliability.integrity import (
    QUARANTINE_DIR,
    file_crc,
    flip_byte,
    frame_record,
    parse_wal_line,
    repair_state_dir,
    scrub_state_dir,
    verify_state_dir,
)


def run_workload(tmp_path, n_ops=150, interval=25):
    """A durable server after a deterministic workload prefix."""
    rc = durable_config(tmp_path, interval=interval)
    server = PDRServer(small_system_config(), expected_objects=N_OBJECTS, reliability=rc)
    for op in OPS[:n_ops]:
        apply_op(server, op)
    return server, rc.state_dir


def wal_segments(state_dir):
    return sorted(
        n for n in os.listdir(state_dir)
        if n.startswith("wal-") and n.endswith(".jsonl")
    )


class TestFraming:
    def test_roundtrip(self):
        record = {"op": "report", "t": 3, "oid": 7, "x": 1.5, "y": 2.0,
                  "vx": -0.25, "vy": 0.5, "lsn": 12}
        line = frame_record(record)
        assert line.startswith("12:")
        assert parse_wal_line(line) == record

    def test_legacy_unframed_line_still_parses(self):
        record = {"op": "advance", "t": 9, "lsn": 4}
        assert parse_wal_line(json.dumps(record) + "\n") == record

    @pytest.mark.parametrize("position", [0, 5, 20, -2])
    def test_any_single_byte_flip_is_detected(self, position):
        line = frame_record({"op": "advance", "t": 1, "lsn": 1})
        raw = bytearray(line.encode())
        raw[position] ^= 0x08
        damaged = raw.decode(errors="replace")
        with pytest.raises(ValueError):
            parse_wal_line(damaged)

    def test_header_payload_lsn_disagreement_is_damage(self):
        line = frame_record({"op": "advance", "t": 1, "lsn": 7})
        # forge the header (with a recomputed checksum) to claim lsn 8
        payload = line.rstrip("\n").split(":", 2)[2]
        from repro.reliability.integrity import record_crc

        forged = f"8:{record_crc(8, payload):08x}:{payload}\n"
        with pytest.raises(ValueError):
            parse_wal_line(forged)

    def test_flip_byte_refuses_no_op(self, tmp_path):
        path = os.path.join(str(tmp_path), "f")
        with open(path, "wb") as fh:
            fh.write(b"abc")
        with pytest.raises(IntegrityError):
            flip_byte(path, 0, xor=0)
        with open(path, "wb"):
            pass
        with pytest.raises(IntegrityError):
            flip_byte(path, 0)


class TestLegacyMigration:
    def test_unframed_state_dir_recovers_and_verifies(self, tmp_path, reference):
        """A pre-framing directory (plain-JSON WAL lines, digestless
        manifest) replays unchanged and upgrades as new appends land."""
        server, state_dir = run_workload(tmp_path, n_ops=150)
        server.close()
        # rewrite every segment in the legacy format and strip the digests
        for name in wal_segments(state_dir):
            path = os.path.join(state_dir, name)
            records = [parse_wal_line(line) for line in open(path, encoding="utf-8")]
            with open(path, "w", encoding="utf-8") as fh:
                for r in records:
                    fh.write(json.dumps(r) + "\n")
        manifest = os.path.join(state_dir, "MANIFEST.json")
        with open(manifest, encoding="utf-8") as fh:
            seq = json.load(fh)["seq"]
        with open(manifest, "w", encoding="utf-8") as fh:
            json.dump({"seq": seq}, fh)

        report = verify_state_dir(state_dir)
        assert report.clean
        assert any(f.legacy_records for f in report.files if f.kind == "wal")

        recovered = PDRServer.recover(state_dir)
        for op in OPS[150:]:
            apply_op(recovered, op)
        assert_states_match(recovered, reference)
        # the resumed tail is framed: the directory upgraded in place
        tail = wal_segments(state_dir)[-1]
        last_line = open(os.path.join(state_dir, tail), encoding="utf-8").readlines()[-1]
        assert not last_line.startswith("{")
        recovered.close()


class TestVerify:
    def test_clean_directory(self, tmp_path):
        server, state_dir = run_workload(tmp_path)
        server.close()
        report = verify_state_dir(state_dir)
        assert report.clean
        assert report.summary().endswith("verify: OK")

    def test_flip_in_wal_payload_names_the_segment(self, tmp_path):
        server, state_dir = run_workload(tmp_path)
        server.close()
        victim = wal_segments(state_dir)[0]
        path = os.path.join(state_dir, victim)
        flip_byte(path, os.path.getsize(path) // 2, xor=0x10)
        report = verify_state_dir(state_dir)
        assert not report.clean
        damaged = report.damaged()
        assert [f.name for f in damaged] == [victim]
        assert victim in report.summary()
        assert report.summary().endswith("verify: FAILED")

    def test_torn_tail_of_newest_segment_is_not_corrupt(self, tmp_path):
        server, state_dir = run_workload(tmp_path)
        server.close()
        tail = wal_segments(state_dir)[-1]
        with open(os.path.join(state_dir, tail), "ab") as fh:
            fh.write(b'{"op": "rep')  # interrupted legacy-style append
        report = verify_state_dir(state_dir)
        [damaged] = report.damaged()
        assert damaged.name == tail
        assert damaged.state == "torn-tail"

    def test_flipped_checkpoint_fails_its_manifest_digest(self, tmp_path):
        server, state_dir = run_workload(tmp_path)
        server.close()
        ckpt = sorted(n for n in os.listdir(state_dir)
                      if n.startswith("ckpt-") and n.endswith(".npz"))[-1]
        flip_byte(os.path.join(state_dir, ckpt), 100, xor=0x01)
        report = verify_state_dir(state_dir)
        [damaged] = report.damaged()
        assert damaged.name == ckpt
        assert "digest" in damaged.detail

    def test_recovery_skips_digest_failing_checkpoint(self, tmp_path, reference):
        """Bit rot in the newest image falls back to the previous one."""
        server, state_dir = run_workload(tmp_path, n_ops=300)
        server.close()
        ckpts = sorted(n for n in os.listdir(state_dir)
                       if n.startswith("ckpt-") and n.endswith(".npz"))
        assert len(ckpts) >= 2, "workload must span two checkpoints"
        flip_byte(os.path.join(state_dir, ckpts[-1]), 64, xor=0x04)
        recovered = PDRServer.recover(state_dir)
        for op in OPS[300:]:
            apply_op(recovered, op)
        assert_states_match(recovered, reference)
        recovered.close()


class TestScrub:
    def test_stray_tmp_files_are_ignored_then_deleted(self, tmp_path, reference):
        """Satellite: zero-byte / half-written ``*.tmp`` leftovers of a
        crash-during-rename must not break recovery, and the scrubber
        removes them."""
        server, state_dir = run_workload(tmp_path, n_ops=150)
        server.close()
        with open(os.path.join(state_dir, "ckpt-00000099.npz.tmp"), "wb"):
            pass  # zero-byte image mid-rename
        with open(os.path.join(state_dir, "MANIFEST.json.tmp"), "w") as fh:
            fh.write('{"seq":')  # torn manifest rewrite
        with open(os.path.join(state_dir, "wal-00000099.jsonl.tmp"), "wb") as fh:
            fh.write(b"\x00\xff garbage")

        report = verify_state_dir(state_dir)
        assert report.clean  # stray tmps are noted, not damage
        assert len(report.stray_tmp()) == 3

        recovered = PDRServer.recover(state_dir)  # recovery never reads them
        for op in OPS[150:]:
            apply_op(recovered, op)
        assert_states_match(recovered, reference)
        recovered.close()

        # the resumed run's checkpoint overwrote MANIFEST.json.tmp with its
        # own atomic rewrite (tmp + rename) — put the stray back for scrub
        with open(os.path.join(state_dir, "MANIFEST.json.tmp"), "w") as fh:
            fh.write('{"seq":')
        report = scrub_state_dir(state_dir)
        assert report.clean
        assert not report.stray_tmp()
        assert sum("stray temp" in a for a in report.actions) == 3

    def test_torn_tail_is_truncated_not_quarantined(self, tmp_path):
        server, state_dir = run_workload(tmp_path)
        server.close()
        tail = os.path.join(state_dir, wal_segments(state_dir)[-1])
        intact = os.path.getsize(tail)
        with open(tail, "ab") as fh:
            fh.write(b"12345:deadbeef:{tor")
        report = scrub_state_dir(state_dir)
        assert report.clean
        assert os.path.getsize(tail) == intact
        assert not os.path.isdir(os.path.join(state_dir, QUARANTINE_DIR))

    def test_corrupt_segment_is_quarantined_with_evidence(self, tmp_path):
        server, state_dir = run_workload(tmp_path)
        server.close()
        victim = wal_segments(state_dir)[0]
        path = os.path.join(state_dir, victim)
        pre_crc = file_crc(path)
        flip_byte(path, os.path.getsize(path) // 2, xor=0x20)
        post_crc = file_crc(path)
        scrub_state_dir(state_dir)
        assert not os.path.exists(path)
        evidence = os.path.join(state_dir, QUARANTINE_DIR, victim)
        assert file_crc(evidence) == post_crc  # moved, not altered
        assert pre_crc != post_crc

    def test_corrupt_checkpoint_takes_its_sidecar_along(self, tmp_path):
        server, state_dir = run_workload(tmp_path)
        server.close()
        ckpt = sorted(n for n in os.listdir(state_dir)
                      if n.startswith("ckpt-") and n.endswith(".npz"))[-1]
        sidecar = ckpt[:-4] + ".json"
        flip_byte(os.path.join(state_dir, ckpt), 10, xor=0x01)
        scrub_state_dir(state_dir)
        qdir = os.path.join(state_dir, QUARANTINE_DIR)
        assert os.path.exists(os.path.join(qdir, ckpt))
        assert os.path.exists(os.path.join(qdir, sidecar))


class TestMidSegmentCorruption:
    """Satellite: non-tail corruption must quarantine + repair, never
    truncate — and never strand the server."""

    def flip_first_segment(self, state_dir):
        victim = wal_segments(state_dir)[0]
        path = os.path.join(state_dir, victim)
        flip_byte(path, os.path.getsize(path) // 3, xor=0x40)
        return victim

    def flip_active_segment(self, state_dir):
        """Corrupt the *first* record of the newest (active) segment:
        mid-segment damage whose records only a replica still holds."""
        victim = [
            n for n in wal_segments(state_dir)
            if os.path.getsize(os.path.join(state_dir, n)) > 0
        ][-1]
        flip_byte(os.path.join(state_dir, victim), 5, xor=0x40)
        return victim

    def test_recover_raises_corruption_error_naming_the_segment(self, tmp_path):
        server, state_dir = run_workload(tmp_path, n_ops=60, interval=0)
        server.close()
        victim = self.flip_first_segment(state_dir)
        with pytest.raises(CorruptionError) as exc_info:
            PDRServer.recover(state_dir)
        assert victim in str(exc_info.value)
        # the file was NOT silently truncated to the pre-damage prefix
        report = verify_state_dir(state_dir)
        assert [f.name for f in report.damaged()] == [victim]

    def test_anti_entropy_repairs_from_replica_history(self, tmp_path, reference):
        group, _ = make_group(tmp_path, n_replicas=2)
        for op in OPS[:300]:
            apply_group_op(group, op)
        state_dir = group.state_dir
        victim = self.flip_active_segment(state_dir)
        report = group.anti_entropy()
        assert report.clean
        assert any("re-fetched" in a or "installed" in a for a in report.actions)
        # the damaged original is preserved for forensics
        assert os.path.exists(os.path.join(state_dir, QUARANTINE_DIR, victim))
        # the group keeps serving writes after the repair ...
        for op in OPS[300:]:
            apply_group_op(group, op)
        group.catch_up_replicas()
        primary = group.primary
        # ... and a cold recovery from the repaired directory is bit-exact
        group.close()
        recovered = PDRServer.recover(state_dir)
        assert np.array_equal(
            recovered.pa.state_arrays()["coeffs"],
            primary.pa.state_arrays()["coeffs"],
        )
        assert np.array_equal(
            recovered.histogram.state_arrays()["counts"],
            primary.histogram.state_arrays()["counts"],
        )
        assert_states_match(recovered, reference)
        recovered.close()

    def test_repair_without_source_fails_loudly(self, tmp_path):
        server, state_dir = run_workload(tmp_path, n_ops=60, interval=0)
        acked = server.wal_lsn
        server.close()
        self.flip_first_segment(state_dir)
        with pytest.raises(RepairError):
            repair_state_dir(state_dir, source=None, target_lsn=acked)


class TestResetCounters:
    """Satellite: ``clear()`` keeps hit counters; ``reset_counters()``
    zeroes them so re-armed after=N rules count from scratch."""

    def test_clear_keeps_counters(self):
        faults = FaultInjector()
        for _ in range(5):
            faults.hit("integrity.flip")
        faults.clear()
        assert faults.hits("integrity.flip") == 5

    def test_reset_counters_zeroes_one_or_all(self):
        faults = FaultInjector()
        faults.hit("a")
        faults.hit("b")
        faults.reset_counters("a")
        assert faults.hits("a") == 0
        assert faults.hits("b") == 1
        faults.reset_counters()
        assert faults.hits("b") == 0

    def test_rearmed_after_rule_fires_at_the_right_hit(self):
        faults = FaultInjector()
        faults.inject_error("site", after=2, times=1)
        faults.hit("site")
        faults.hit("site")
        with pytest.raises(TransientIOError):
            faults.hit("site")
        faults.clear("site")
        # without reset, a re-armed after=2 rule would fire immediately
        # (stale hits 1..3 already count); reset gives a fresh episode
        faults.reset_counters("site")
        faults.inject_error("site", after=2, times=1)
        faults.hit("site")
        faults.hit("site")
        with pytest.raises(TransientIOError):
            faults.hit("site")


class TestVerifyCLI:
    """The acceptance scenario: hand-flip one WAL payload byte, watch
    ``repro verify`` fail naming the segment, repair from a replica,
    watch it pass."""

    def test_verify_exit_codes_and_repair_roundtrip(self, tmp_path, capsys):
        group, _ = make_group(tmp_path, n_replicas=2)
        for op in OPS[:300]:
            apply_group_op(group, op)
        state_dir = group.state_dir
        assert cli.main(["verify", "--state-dir", state_dir]) == 0
        out = capsys.readouterr().out
        assert "verify: OK" in out

        victim = wal_segments(state_dir)[0]
        path = os.path.join(state_dir, victim)
        flip_byte(path, os.path.getsize(path) // 2, xor=0x02)

        assert cli.main(["verify", "--state-dir", state_dir]) == 8
        out = capsys.readouterr().out
        assert victim in out
        assert "verify: FAILED" in out

        report = group.anti_entropy()
        assert report.clean
        assert cli.main(["verify", "--state-dir", state_dir]) == 0
        group.close()

    def test_verify_json_and_scrub_flags(self, tmp_path, capsys):
        server, state_dir = run_workload(tmp_path, n_ops=60)
        server.close()
        with open(os.path.join(state_dir, "MANIFEST.json.tmp"), "w") as fh:
            fh.write("{")
        assert cli.main(["verify", "--state-dir", state_dir, "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["clean"] is True
        assert any(f["state"] == "stray-tmp" for f in payload["files"])
        assert cli.main(["verify", "--state-dir", state_dir, "--scrub"]) == 0
        assert "deleted stray temp" in capsys.readouterr().out
        assert not os.path.exists(os.path.join(state_dir, "MANIFEST.json.tmp"))

    def test_verify_missing_directory_is_an_integrity_error(self, tmp_path, capsys):
        missing = os.path.join(str(tmp_path), "nope")
        assert cli.main(["verify", "--state-dir", missing]) == 8
        assert "IntegrityError" in capsys.readouterr().err
