"""Tests for the baselines: brute force oracle, dense cells, EDQ."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.bruteforce import bruteforce_from_motions, bruteforce_pdr
from repro.baselines.dense_cell import dense_cell_query
from repro.baselines.edq import edq_query, edq_report_ambiguity
from repro.core.geometry import Rect
from repro.core.query import SnapshotPDRQuery
from repro.histogram.density_histogram import DensityHistogram
from repro.motion.model import Motion
from repro.motion.table import ObjectTable

DOMAIN = Rect(0.0, 0.0, 100.0, 100.0)


class TestBruteForce:
    def test_single_object(self):
        q = SnapshotPDRQuery(rho=0.01, l=10.0, qt=0)
        result = bruteforce_pdr([(50.0, 50.0)], DOMAIN, q)
        assert result.regions.area() == pytest.approx(100.0)
        assert result.stats.method == "bruteforce"
        assert result.stats.objects_examined == 1

    def test_from_motions_evaluates_at_qt(self):
        q = SnapshotPDRQuery(rho=0.01, l=10.0, qt=5)
        motions = [Motion(0, 0, 10.0, 50.0, 4.0, 0.0)]  # at qt=5: x=30
        result = bruteforce_from_motions(motions, DOMAIN, q)
        assert result.regions.contains_point(30.0, 50.0)
        assert not result.regions.contains_point(10.0, 50.0)

    def test_from_motions_ignores_out_of_domain(self):
        q = SnapshotPDRQuery(rho=0.001, l=10.0, qt=5)
        motions = [Motion(0, 0, 90.0, 50.0, 4.0, 0.0)]  # at qt=5: x=110
        result = bruteforce_from_motions(motions, DOMAIN, q)
        assert result.regions.is_empty()


class TestDenseCell:
    def _hist_with(self, positions):
        table = ObjectTable()
        hist = DensityHistogram(DOMAIN, m=10, horizon=2)  # 10x10 cells
        table.add_listener(hist)
        for oid, (x, y) in enumerate(positions):
            table.report(oid, float(x), float(y), 0.0, 0.0)
        return hist

    def test_reports_dense_cell(self):
        # 5 objects in cell (2, 2): region density 5/100 = 0.05.
        hist = self._hist_with([(25 + i, 25) for i in range(5)])
        q = SnapshotPDRQuery(rho=0.05, l=10.0, qt=0)
        result = dense_cell_query(hist, q)
        assert len(result.regions) == 1
        assert result.regions.rects[0] == Rect(20, 20, 30, 30)

    def test_answer_loss_figure_1a(self):
        """Four objects around a cell corner: no cell is dense, so the
        baseline reports nothing — while the PDR answer is non-empty."""
        positions = [(29.0, 29.0), (31.0, 29.0), (29.0, 31.0), (31.0, 31.0)]
        hist = self._hist_with(positions)
        q = SnapshotPDRQuery(rho=0.04, l=10.0, qt=0)  # needs 4 per l-square
        cells = dense_cell_query(hist, q)
        assert cells.regions.is_empty()  # answer loss
        pdr = bruteforce_pdr(positions, DOMAIN, q)
        assert not pdr.regions.is_empty()
        assert pdr.regions.contains_point(30.0, 30.0)

    def test_threshold_boundary_inclusive(self):
        hist = self._hist_with([(5, 5)])
        q = SnapshotPDRQuery(rho=0.01, l=10.0, qt=0)  # exactly 1 per cell
        result = dense_cell_query(hist, q)
        assert len(result.regions) == 1


class TestEDQ:
    def test_squares_have_edge_l(self):
        positions = [(50.0, 50.0), (51.0, 50.0)]
        q = SnapshotPDRQuery(rho=0.02, l=10.0, qt=0)
        result = edq_query(positions, DOMAIN, q)
        for rect in result.regions:
            assert rect.width == pytest.approx(10.0)
            assert rect.height == pytest.approx(10.0)

    def test_non_overlapping(self):
        gen = np.random.default_rng(0)
        positions = [tuple(gen.uniform(10, 90, size=2)) for _ in range(60)]
        q = SnapshotPDRQuery(rho=0.02, l=10.0, qt=0)
        result = edq_query(positions, DOMAIN, q)
        rects = list(result.regions)
        for i, a in enumerate(rects):
            for b in rects[i + 1 :]:
                assert not a.intersects(b)

    def test_empty_when_nothing_dense(self):
        q = SnapshotPDRQuery(rho=0.5, l=10.0, qt=0)
        assert edq_query([(50.0, 50.0)], DOMAIN, q).regions.is_empty()

    def test_finds_obvious_cluster(self):
        positions = [(50.0 + dx, 50.0 + dy) for dx in (0, 1) for dy in (0, 1)]
        q = SnapshotPDRQuery(rho=0.04, l=10.0, qt=0)
        result = edq_query(positions, DOMAIN, q)
        assert len(result.regions) >= 1

    def test_ambiguity_figure_1b(self):
        """Two overlapping dense squares: different reporting strategies can
        return different (both valid) answers."""
        # Two clusters 8 apart with l = 10: their dense squares overlap, so
        # a non-overlapping report must drop one of the two options.
        positions = [
            (46.0, 50.0), (46.5, 50.0), (47.0, 50.0),
            (54.0, 50.0), (54.5, 50.0), (55.0, 50.0),
        ]
        q = SnapshotPDRQuery(rho=0.03, l=10.0, qt=0)
        a, b = edq_report_ambiguity(positions, DOMAIN, q)
        # Both answers are non-overlapping and dense; at least one differs
        # in extent (the ambiguity the paper criticises), or — if the greedy
        # orders happen to coincide — both contain fewer squares than the
        # number of dense patches.
        assert not a.regions.is_empty()
        assert not b.regions.is_empty()
        difference = a.regions.symmetric_difference_area(b.regions)
        pdr = bruteforce_pdr(positions, DOMAIN, q)
        # PDR reports the full dense point set, a superset of information.
        assert pdr.regions.area() > 0
        assert difference >= 0.0  # strategies may or may not coincide here

    def test_pdr_includes_edq_centers(self):
        """Section 3.1: the centres of the baselines' dense squares are
        rho-dense points, hence inside the PDR answer."""
        gen = np.random.default_rng(7)
        positions = [tuple(gen.normal([40, 40], 5, size=2)) for _ in range(30)]
        positions = [(float(x), float(y)) for x, y in positions]
        q = SnapshotPDRQuery(rho=0.05, l=10.0, qt=0)
        edq = edq_query(positions, DOMAIN, q)
        pdr = bruteforce_pdr(positions, DOMAIN, q)
        for rect in edq.regions:
            c = rect.center
            assert pdr.regions.contains_point(c.x, c.y)
