"""Tests for the 1-D/2-D Chebyshev machinery (Section 6.1, Theorem 1)."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.chebyshev.cheb1d import (
    chebyshev_values,
    interval_bounds,
    interval_bounds_all,
    weighted_integrals,
)
from repro.chebyshev.cheb2d import (
    approximate_function,
    coefficient_count,
    evaluate,
    evaluate_grid,
    normalization_factors,
    total_degree_mask,
)
from repro.core.errors import InvalidParameterError

unit = st.floats(-1, 1)


class TestChebyshevValues:
    def test_first_polynomials(self):
        x = np.array([-1.0, -0.5, 0.0, 0.5, 1.0])
        t = chebyshev_values(3, x)
        assert np.allclose(t[0], 1.0)
        assert np.allclose(t[1], x)
        assert np.allclose(t[2], 2 * x**2 - 1)
        assert np.allclose(t[3], 4 * x**3 - 3 * x)

    @given(st.integers(0, 12), unit)
    def test_matches_cosine_definition(self, k, x):
        t = chebyshev_values(k, np.array([x]))
        expected = math.cos(k * math.acos(x))
        assert t[k, 0] == pytest.approx(expected, abs=1e-9)

    def test_negative_degree_raises(self):
        with pytest.raises(InvalidParameterError):
            chebyshev_values(-1, np.array([0.0]))

    def test_bounded_by_one(self):
        x = np.linspace(-1, 1, 101)
        t = chebyshev_values(10, x)
        assert np.abs(t).max() <= 1.0 + 1e-12


class TestWeightedIntegrals:
    def test_full_interval_degree_zero(self):
        # ∫ 1/sqrt(1-x^2) over [-1, 1] = pi.
        vals = weighted_integrals(3, -1.0, 1.0)
        assert vals[0] == pytest.approx(math.pi)

    def test_full_interval_higher_degrees_vanish(self):
        # Orthogonality: ∫ T_i w = 0 for i >= 1 over the full interval.
        vals = weighted_integrals(6, -1.0, 1.0)
        assert np.allclose(vals[1:], 0.0, atol=1e-12)

    def test_empty_interval(self):
        assert np.allclose(weighted_integrals(4, 0.5, 0.5), 0.0)
        assert np.allclose(weighted_integrals(4, 0.7, 0.2), 0.0)

    def test_clipping(self):
        a = weighted_integrals(4, -5.0, 5.0)
        b = weighted_integrals(4, -1.0, 1.0)
        assert np.allclose(a, b)

    @given(
        st.integers(0, 8),
        st.floats(-0.99, 0.99),
        st.floats(-0.99, 0.99),
    )
    @settings(max_examples=50)
    def test_matches_numeric_quadrature(self, i, a, b):
        z1, z2 = min(a, b), max(a, b)
        if z2 - z1 < 1e-3:
            return
        xs = np.linspace(z1, z2, 20001)
        integrand = chebyshev_values(i, xs)[i] / np.sqrt(1 - xs**2)
        numeric = np.trapezoid(integrand, xs)
        closed = weighted_integrals(i, z1, z2)[i]
        assert closed == pytest.approx(numeric, abs=1e-4)

    def test_additivity(self):
        whole = weighted_integrals(5, -0.8, 0.6)
        left = weighted_integrals(5, -0.8, -0.1)
        right = weighted_integrals(5, -0.1, 0.6)
        assert np.allclose(whole, left + right, atol=1e-12)


class TestIntervalBounds:
    @given(st.integers(0, 10), st.floats(-1, 1), st.floats(-1, 1))
    @settings(max_examples=120)
    def test_bounds_are_sound_and_tight(self, i, a, b):
        z1, z2 = min(a, b), max(a, b)
        lo, hi = interval_bounds(i, z1, z2)
        xs = np.linspace(z1, z2, 257)
        vals = chebyshev_values(i, xs)[i]
        assert vals.min() >= lo - 1e-9
        assert vals.max() <= hi + 1e-9
        # Tight: the extrema are attained up to sampling error.
        assert vals.min() <= lo + 0.02 or lo == -1.0
        assert vals.max() >= hi - 0.02 or hi == 1.0

    def test_degree_zero(self):
        assert interval_bounds(0, -0.3, 0.7) == (1.0, 1.0)

    def test_full_interval_high_degree(self):
        assert interval_bounds(5, -1.0, 1.0) == (-1.0, 1.0)

    def test_monotone_patch(self):
        # T_1 = x on [0.2, 0.5].
        lo, hi = interval_bounds(1, 0.2, 0.5)
        assert lo == pytest.approx(0.2)
        assert hi == pytest.approx(0.5)

    def test_point_interval(self):
        lo, hi = interval_bounds(4, 0.3, 0.3)
        val = float(chebyshev_values(4, np.array([0.3]))[4, 0])
        assert lo == pytest.approx(val)
        assert hi == pytest.approx(val)

    def test_invalid(self):
        with pytest.raises(InvalidParameterError):
            interval_bounds(-1, 0, 1)
        with pytest.raises(InvalidParameterError):
            interval_bounds(2, 0.5, 0.2)

    def test_all_variant_matches_scalar(self):
        lows, highs = interval_bounds_all(6, -0.4, 0.9)
        for i in range(7):
            lo, hi = interval_bounds(i, -0.4, 0.9)
            assert lows[i] == pytest.approx(lo)
            assert highs[i] == pytest.approx(hi)


class TestNormalizationAndMask:
    def test_factors(self):
        c = normalization_factors(2)
        assert c[0, 0] == 1.0
        assert c[0, 1] == 2.0 and c[1, 0] == 2.0
        assert c[1, 1] == 4.0

    def test_mask(self):
        mask = total_degree_mask(2)
        assert mask[0, 0] and mask[1, 1] and mask[2, 0]
        assert not mask[2, 1] and not mask[2, 2]

    def test_coefficient_count(self):
        assert coefficient_count(0) == 1
        assert coefficient_count(5) == 21  # (k+1)(k+2)/2


class TestApproximateFunction:
    def test_constant(self):
        coeffs = approximate_function(lambda x, y: 3.0, k=4)
        assert coeffs[0, 0] == pytest.approx(3.0)
        other = coeffs.copy()
        other[0, 0] = 0.0
        assert np.allclose(other, 0.0, atol=1e-10)

    def test_recovers_linear(self):
        coeffs = approximate_function(lambda x, y: 2 * x - y, k=3)
        assert coeffs[1, 0] == pytest.approx(2.0)
        assert coeffs[0, 1] == pytest.approx(-1.0)

    def test_recovers_product(self):
        # x*y = T1(x) T1(y).
        coeffs = approximate_function(lambda x, y: x * y, k=3)
        assert coeffs[1, 1] == pytest.approx(1.0)

    def test_smooth_function_accuracy(self):
        f = lambda x, y: np.exp(-(x**2 + y**2))  # noqa: E731
        coeffs = approximate_function(f, k=8)
        xs = np.linspace(-0.95, 0.95, 12)
        approx = evaluate_grid(coeffs, xs, xs)
        exact = np.array([[f(x, y) for y in xs] for x in xs])
        assert np.abs(approx - exact).max() < 0.01

    def test_quadrature_points_validation(self):
        with pytest.raises(InvalidParameterError):
            approximate_function(lambda x, y: 1.0, k=8, quad_points=8)


class TestEvaluate:
    def test_evaluate_matches_grid(self):
        rng = np.random.default_rng(0)
        coeffs = rng.normal(size=(4, 4))
        coeffs[~total_degree_mask(3)] = 0.0
        xs = np.array([-0.5, 0.3])
        ys = np.array([0.1, 0.9])
        grid = evaluate_grid(coeffs, xs, ys)
        for i, x in enumerate(xs):
            for j, y in enumerate(ys):
                v = evaluate(coeffs, np.array([x]), np.array([y]))[0]
                assert grid[i, j] == pytest.approx(v)

    @given(unit, unit)
    @settings(max_examples=30)
    def test_evaluate_linear_combination(self, x, y):
        coeffs = np.zeros((3, 3))
        coeffs[0, 0] = 1.5
        coeffs[1, 0] = -2.0
        coeffs[0, 2] = 0.5
        expected = 1.5 - 2.0 * x + 0.5 * (2 * y * y - 1)
        got = evaluate(coeffs, np.array([x]), np.array([y]))[0]
        assert got == pytest.approx(expected, abs=1e-9)
