"""Tests for accuracy metrics, raster measurement and cost accounting."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.errors import InvalidParameterError
from repro.core.geometry import Rect
from repro.core.query import QueryStats
from repro.core.regions import RegionSet
from repro.metrics.accuracy import (
    accuracy,
    false_negative_ratio,
    false_positive_ratio,
)
from repro.metrics.cost import CostAccumulator, UpdateCostTimer
from repro.metrics.raster import RasterMeasure

DOMAIN = Rect(0.0, 0.0, 100.0, 100.0)


def region(*rects):
    return RegionSet([Rect(*r) for r in rects])


class TestAccuracyRatios:
    def test_perfect_answer(self):
        exact = region((0, 0, 10, 10))
        report = accuracy(exact, exact)
        assert report.r_fp == 0.0
        assert report.r_fn == 0.0
        assert report.jaccard == pytest.approx(1.0)

    def test_pure_false_positive(self):
        exact = region((0, 0, 10, 10))
        reported = region((0, 0, 10, 10), (50, 50, 60, 70))
        report = accuracy(exact, reported)
        assert report.r_fp == pytest.approx(2.0)  # 200 spurious / 100 exact
        assert report.r_fn == 0.0

    def test_r_fp_can_exceed_one(self):
        # Section 7.2: "r_fp may exceed 100%, while r_fn never does".
        exact = region((0, 0, 1, 1))
        reported = region((0, 0, 50, 50))
        assert false_positive_ratio(exact, reported) > 1.0

    def test_r_fn_at_most_one(self):
        exact = region((0, 0, 50, 50))
        assert false_negative_ratio(exact, RegionSet()) == pytest.approx(1.0)

    def test_pure_false_negative(self):
        exact = region((0, 0, 10, 10), (20, 0, 30, 10))
        reported = region((0, 0, 10, 10))
        report = accuracy(exact, reported)
        assert report.r_fn == pytest.approx(0.5)
        assert report.r_fp == 0.0

    def test_empty_exact_empty_report(self):
        report = accuracy(RegionSet(), RegionSet())
        assert report.r_fp == 0.0
        assert report.r_fn == 0.0
        assert report.jaccard == 1.0

    def test_empty_exact_nonempty_report(self):
        report = accuracy(RegionSet(), region((0, 0, 5, 5)))
        assert report.r_fp == float("inf")
        assert report.r_fn == 0.0

    def test_partial_overlap(self):
        exact = region((0, 0, 10, 10))
        reported = region((5, 0, 15, 10))
        report = accuracy(exact, reported)
        assert report.r_fp == pytest.approx(0.5)
        assert report.r_fn == pytest.approx(0.5)
        assert report.jaccard == pytest.approx(50.0 / 150.0)

    @given(
        st.lists(
            st.tuples(st.integers(0, 40), st.integers(0, 40),
                      st.integers(1, 10), st.integers(1, 10)),
            max_size=6,
        ),
        st.lists(
            st.tuples(st.integers(0, 40), st.integers(0, 40),
                      st.integers(1, 10), st.integers(1, 10)),
            max_size=6,
        ),
    )
    @settings(max_examples=40)
    def test_ratio_bounds_property(self, a_rects, b_rects):
        exact = RegionSet([Rect(x, y, x + w, y + h) for x, y, w, h in a_rects])
        reported = RegionSet([Rect(x, y, x + w, y + h) for x, y, w, h in b_rects])
        report = accuracy(exact, reported)
        assert report.r_fn <= 1.0 + 1e-9
        assert report.r_fp >= 0.0
        assert 0.0 <= report.jaccard <= 1.0 + 1e-9


class TestRasterMeasure:
    def test_area_of_aligned_rect_exact(self):
        raster = RasterMeasure(DOMAIN, resolution=100)  # 1x1 cells
        assert raster.area(region((10, 10, 30, 40))) == pytest.approx(600.0)

    def test_accuracy_matches_exact_on_aligned_rects(self):
        raster = RasterMeasure(DOMAIN, resolution=100)
        exact = region((0, 0, 20, 20), (50, 50, 70, 60))
        reported = region((10, 0, 30, 20))
        exact_report = accuracy(exact, reported)
        raster_report = raster.accuracy(exact, reported)
        assert raster_report.r_fp == pytest.approx(exact_report.r_fp)
        assert raster_report.r_fn == pytest.approx(exact_report.r_fn)

    @given(
        st.lists(
            st.tuples(st.floats(0, 80), st.floats(0, 80),
                      st.floats(8, 20), st.floats(8, 20)),
            min_size=1, max_size=6,
        ),
        st.lists(
            st.tuples(st.floats(0, 80), st.floats(0, 80),
                      st.floats(8, 20), st.floats(8, 20)),
            min_size=1, max_size=6,
        ),
    )
    @settings(max_examples=25, deadline=None)
    def test_close_to_exact_on_unaligned_rects(self, a_rects, b_rects):
        # Discretisation error in the *ratios* scales with boundary length
        # over reference area, so keep features at least 8 units (80 cells)
        # wide — the same regime the harness uses (features >= l/2).
        raster = RasterMeasure(DOMAIN, resolution=1000)
        exact = RegionSet([Rect(x, y, x + w, y + h) for x, y, w, h in a_rects])
        reported = RegionSet([Rect(x, y, x + w, y + h) for x, y, w, h in b_rects])
        exact_report = accuracy(exact, reported)
        raster_report = raster.accuracy(exact, reported)
        # The documented contract is *relative*: discretisation shifts the
        # ratios by a percent or two of their value.  A purely absolute
        # tolerance breaks when the reference area is small and the ratio
        # itself is large (e.g. r_fp ~ 6 needs 6 * 2% leeway); adversarial
        # sliver geometries (hypothesis-found) sit just above 1%.
        assert raster_report.r_fp == pytest.approx(exact_report.r_fp, rel=0.02, abs=0.05)
        assert raster_report.r_fn == pytest.approx(exact_report.r_fn, rel=0.02, abs=0.05)

    def test_rect_outside_domain_clipped(self):
        raster = RasterMeasure(DOMAIN, resolution=50)
        assert raster.area(region((90, 90, 200, 200))) == pytest.approx(100.0)

    def test_validation(self):
        with pytest.raises(InvalidParameterError):
            RasterMeasure(DOMAIN, resolution=0)
        with pytest.raises(InvalidParameterError):
            RasterMeasure(Rect(0, 0, 0, 10), resolution=10)


class TestCostAccumulators:
    def test_means(self):
        acc = CostAccumulator()
        acc.add(QueryStats(cpu_seconds=1.0, io_count=10, io_seconds=0.1))
        acc.add(QueryStats(cpu_seconds=3.0, io_count=20, io_seconds=0.3))
        assert len(acc) == 2
        assert acc.mean_cpu_seconds == pytest.approx(2.0)
        assert acc.mean_io_count == pytest.approx(15.0)
        assert acc.mean_io_seconds == pytest.approx(0.2)
        assert acc.mean_total_seconds == pytest.approx(2.2)

    def test_empty_accumulator(self):
        acc = CostAccumulator()
        assert acc.mean_cpu_seconds == 0.0
        assert acc.mean_total_seconds == 0.0

    def test_update_timer(self):
        timer = UpdateCostTimer()
        timer.record(0.002)
        timer.record(0.004)
        assert timer.updates == 2
        assert timer.mean_seconds_per_update == pytest.approx(0.003)
        assert timer.mean_millis_per_update == pytest.approx(3.0)

    def test_update_timer_empty(self):
        assert UpdateCostTimer().mean_seconds_per_update == 0.0

    def test_update_timer_batch(self):
        timer = UpdateCostTimer()
        timer.record(1.0, updates=10)
        assert timer.mean_millis_per_update == pytest.approx(100.0)
