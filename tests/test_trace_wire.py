"""Cross-process trace propagation over the wire.

The contract: one logical client operation is one trace — the envelope
minted before the retry loop rides every retry and redirect unchanged;
the server adopts it across the executor hop so its dispatch tree joins
the client's trace; sampled success frames return that tree and the
client stitches a single client→server span tree an operator can pull
up with ``repro trace``.
"""

from __future__ import annotations

import random
import socket
import threading

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from tests.conftest import small_system_config
from repro import PDRServer
from repro.reliability.replication import ReplicationConfig, ReplicationGroup
from repro.reliability.validation import ReliabilityConfig
from repro.serving.client import ClientConfig, ResilientClient
from repro.serving.protocol import (
    decode_frame,
    encode_frame,
    make_trace_envelope,
    parse_trace_envelope,
    read_frame_sync,
    write_frame_sync,
)
from repro.serving.server import ServerThread, ServingConfig
from repro.telemetry import TELEMETRY, new_trace_id


# ----------------------------------------------------------------------
# envelope round-trip
# ----------------------------------------------------------------------
@settings(max_examples=50, deadline=None)
@given(
    trace_id=st.text(
        alphabet="0123456789abcdef", min_size=1, max_size=32
    ),
    parent_id=st.one_of(
        st.none(),
        st.text(alphabet="0123456789abcdef", min_size=1, max_size=16),
    ),
    sampled=st.booleans(),
)
def test_envelope_survives_the_wire_byte_exact(trace_id, parent_id, sampled):
    message = {
        "op": "fr_query",
        "varrho": 2.0,
        "trace": make_trace_envelope(trace_id, parent_id, sampled),
    }
    decoded = decode_frame(encode_frame(message)[4:])
    assert parse_trace_envelope(decoded) == (trace_id, parent_id, sampled)


@pytest.mark.parametrize("envelope", [
    None,                                   # absent
    "not-a-dict",
    {},                                     # no trace_id
    {"trace_id": 17},                       # wrong type
    {"trace_id": ""},                       # empty
    {"trace_id": "abc", "parent_id": 5},    # bad parent degrades, not errors
])
def test_malformed_envelopes_degrade_to_untraced(envelope):
    message = {"op": "health"}
    if envelope is not None:
        message["trace"] = envelope
    parsed = parse_trace_envelope(message)
    if isinstance(envelope, dict) and envelope.get("trace_id") == "abc":
        assert parsed == ("abc", None, False)  # parent coerced to None
    else:
        assert parsed is None


def test_trace_ids_are_pid_prefixed_and_unique():
    import os

    a, b = new_trace_id(), new_trace_id()
    assert a != b
    assert a.startswith(f"{os.getpid():08x}")


# ----------------------------------------------------------------------
# a scripted front door: deterministic sheds and redirects
# ----------------------------------------------------------------------
class ScriptedServer:
    """Speaks the wire protocol, answering from a queue of frames.

    Records every request frame it sees, so tests can assert what the
    client actually put on the wire across retries and redirects.
    """

    def __init__(self, script):
        self.script = list(script)
        self.received = []
        self.sock = socket.socket()
        self.sock.bind(("127.0.0.1", 0))
        self.sock.listen(8)
        self.address = self.sock.getsockname()
        self._stop = False
        self.thread = threading.Thread(target=self._serve, daemon=True)
        self.thread.start()

    def _serve(self):
        while not self._stop:
            try:
                conn, _ = self.sock.accept()
            except OSError:
                return
            try:
                while True:
                    message = read_frame_sync(conn)
                    if message is None:
                        break
                    self.received.append(message)
                    if not self.script:
                        response = {"ok": True, "epoch": 1}
                    else:
                        response = self.script.pop(0)
                    write_frame_sync(conn, response)
            except Exception:
                pass
            finally:
                conn.close()

    def close(self):
        self._stop = True
        try:
            self.sock.close()
        except OSError:
            pass


def test_one_envelope_rides_every_retry(tmp_path):
    # two sheds, then success: three wire attempts, one logical op
    server = ScriptedServer([
        {"ok": False, "error": "shed", "message": "busy",
         "retry_after": 0.0, "epoch": 1},
        {"ok": False, "error": "shed", "message": "busy",
         "retry_after": 0.0, "epoch": 1},
        {"ok": True, "accepted": 1, "lsn": 1, "epoch": 1},
    ])
    try:
        client = ResilientClient(
            [server.address],
            config=ClientConfig(trace_sample=1, max_attempts=5,
                                backoff_base=0.001, backoff_cap=0.002,
                                seed=7),
        )
        client.report(1, 10.0, 10.0, 0.0, 0.0)
        client.close()
        assert len(server.received) == 3
        envelopes = [parse_trace_envelope(m) for m in server.received]
        assert all(e is not None for e in envelopes)
        assert len({e for e in envelopes}) == 1  # identical across retries
        (trace,) = client.traces
        assert trace["trace_id"] == envelopes[0][0]
        assert trace["attrs"]["attempts"] == 3
    finally:
        server.close()


def test_one_envelope_rides_a_redirect(tmp_path):
    final = ScriptedServer([
        {"ok": True, "accepted": 1, "lsn": 7, "epoch": 2},
    ])
    first = ScriptedServer([
        {"ok": False, "error": "not_primary", "message": "go elsewhere",
         "redirect": list(final.address), "epoch": 2},
    ])
    try:
        client = ResilientClient(
            [first.address],
            config=ClientConfig(trace_sample=1, max_attempts=5,
                                backoff_base=0.001, seed=7),
        )
        client.report(2, 20.0, 20.0, 0.0, 0.0)
        client.close()
        assert len(first.received) == 1 and len(final.received) == 1
        env_first = parse_trace_envelope(first.received[0])
        env_final = parse_trace_envelope(final.received[0])
        assert env_first == env_final  # the redirect did not re-mint
        (trace,) = client.traces
        assert trace["trace_id"] == env_first[0]
    finally:
        first.close()
        final.close()


def test_unsampled_requests_carry_no_envelope():
    server = ScriptedServer([
        {"ok": True, "accepted": 1, "lsn": 1, "epoch": 1},
        {"ok": True, "accepted": 1, "lsn": 2, "epoch": 1},
    ])
    try:
        client = ResilientClient(
            [server.address], config=ClientConfig(trace_sample=2, seed=7)
        )
        client.report(1, 10.0, 10.0, 0.0, 0.0)  # index 0: sampled
        client.report(2, 10.0, 10.0, 0.0, 0.0)  # index 1: not
        client.close()
        assert parse_trace_envelope(server.received[0]) is not None
        assert parse_trace_envelope(server.received[1]) is None
        assert server.received[1].get("trace") is None  # message untouched
    finally:
        server.close()


# ----------------------------------------------------------------------
# live front door: the stitched tree crosses the executor hop
# ----------------------------------------------------------------------
N_OBJECTS = 48


def _tree_names(tree):
    names = {tree.get("name")}
    names.update((tree.get("stages") or {}).keys())
    for child in tree.get("children") or ():
        names |= _tree_names(child)
    return names


@pytest.fixture
def traced_front_door(tmp_path):
    primary = PDRServer(
        small_system_config(),
        expected_objects=N_OBJECTS,
        reliability=ReliabilityConfig(state_dir=str(tmp_path / "state")),
    )
    rng = random.Random(11)
    primary.report_batch([
        (oid, rng.uniform(2.0, 98.0), rng.uniform(2.0, 98.0),
         rng.uniform(-0.5, 0.5), rng.uniform(-0.5, 0.5))
        for oid in range(N_OBJECTS)
    ])
    primary.advance_to(1)
    group = ReplicationGroup(
        primary, n_replicas=1,
        config=ReplicationConfig(staleness_bound=1_000_000),
    )
    thread = ServerThread(group, ServingConfig()).start()
    try:
        yield thread
    finally:
        thread.stop()
        group.close()


def test_sampled_fr_query_yields_one_stitched_tree(traced_front_door):
    client = ResilientClient(
        [traced_front_door.address], config=ClientConfig(trace_sample=1)
    )
    try:
        frame = client.query("fr", qt_offset=1, varrho=2.0)
        assert frame.get("trace"), "sampled success frame must carry a tree"
        (trace,) = client.traces
        names = _tree_names(trace)
        # the full acceptance chain: client span, server dispatch span,
        # and the five refinement stage spans
        assert "client_request" in names
        assert "dispatch" in names
        for stage in ("filter", "fuse", "fetch", "sweep", "merge"):
            assert stage in names, f"stage {stage} missing from {names}"
        # the server tree joined the *client's* trace id end to end
        def all_trace_ids(tree):
            ids = {tree.get("trace_id")} - {None}
            for child in tree.get("children") or ():
                ids |= all_trace_ids(child)
            return ids
        assert all_trace_ids(trace) == {trace["trace_id"]}
    finally:
        client.close()


def test_reader_pool_dispatch_adopts_without_leaking(traced_front_door):
    # several sampled reads back to back: the executor threads must
    # adopt per-request and restore, never bleeding one request's trace
    # into the next
    client = ResilientClient(
        [traced_front_door.address], config=ClientConfig(trace_sample=1)
    )
    try:
        ids = set()
        for _ in range(4):
            frame = client.query("pa", qt_offset=1, varrho=2.0)
            ids.add(frame["trace"]["trace_id"])
        assert len(ids) == 4  # four ops, four distinct traces
        assert len(client.traces) == 4
    finally:
        client.close()


def test_unsampled_queries_against_live_server_stay_untraced(traced_front_door):
    client = ResilientClient(
        [traced_front_door.address], config=ClientConfig()  # sampling off
    )
    try:
        frame = client.query("pa", qt_offset=1, varrho=2.0)
        assert "trace" not in frame
        assert not client.traces
    finally:
        client.close()


def test_slow_query_exemplars_carry_the_wire_trace_id(traced_front_door):
    TELEMETRY.slow_queries.clear()
    client = ResilientClient(
        [traced_front_door.address], config=ClientConfig(trace_sample=1)
    )
    try:
        frame = client.query("fr", qt_offset=1, varrho=2.0)
        tid = frame["trace"]["trace_id"]
    finally:
        client.close()
    entries = [
        e for e in TELEMETRY.slow_queries.entries() if e.trace_id == tid
    ]
    assert entries, "the traced query must land in the slow log"
    assert entries[0].journal_seq is not None  # joinable to the journal
