"""Stateful (model-based) property tests.

Hypothesis drives random interleavings of inserts, deletes, clock advances
and queries against the TPR-tree, the B^x-tree and the full server,
checking each against a trivially-correct in-memory model after every step.
This is the failure-injection layer of the suite: it explores orderings a
hand-written test would never reach (delete-triggered condensation followed
by splits, queries between re-reports, ring-buffer rollover mid-stream...).
"""

from __future__ import annotations

import numpy as np
from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    precondition,
    rule,
)

from repro.core.geometry import Rect
from repro.index.bx import BxTree
from repro.index.tree import TPRTree
from repro.motion.model import Motion

DOMAIN = Rect(0.0, 0.0, 100.0, 100.0)

coord = st.floats(0, 100, allow_nan=False)
velocity = st.floats(-2, 2, allow_nan=False)
oid_strategy = st.integers(0, 25)


class TPRTreeMachine(RuleBasedStateMachine):
    """The TPR-tree against a dict-of-motions model."""

    @initialize()
    def setup(self) -> None:
        self.tnow = 0
        self.tree = TPRTree(horizon=15, fanout_override=5, tnow=0)
        self.model = {}

    @rule(oid=oid_strategy, x=coord, y=coord, vx=velocity, vy=velocity)
    def report(self, oid, x, y, vx, vy):
        """Insert (or replace) a motion, as the update protocol would."""
        motion = Motion(oid, self.tnow, x, y, vx, vy)
        if oid in self.model:
            self.tree.delete(self.model[oid])
        self.tree.insert(motion)
        self.model[oid] = motion

    @precondition(lambda self: self.model)
    @rule(pick=st.randoms(use_true_random=False))
    def retire(self, pick):
        oid = pick.choice(sorted(self.model))
        self.tree.delete(self.model.pop(oid))

    @rule(dt=st.integers(1, 4))
    def advance(self, dt):
        self.tnow += dt
        self.tree.on_advance(self.tnow)

    @rule(
        x1=st.floats(0, 70),
        y1=st.floats(0, 70),
        w=st.floats(5, 40),
        h=st.floats(5, 40),
        dt=st.integers(0, 10),
    )
    def query_matches_model(self, x1, y1, w, h, dt):
        rect = Rect(x1, y1, x1 + w, y1 + h)
        qt = self.tnow + dt
        got = sorted(m.oid for m in self.tree.range_query(rect, qt, charge_io=False))
        want = []
        for motion in self.model.values():
            px, py = motion.position_at(qt)
            if rect.x1 <= px <= rect.x2 and rect.y1 <= py <= rect.y2:
                want.append(motion.oid)
        assert got == sorted(want)

    @invariant()
    def structure_valid(self):
        self.tree.validate()
        assert len(self.tree) == len(self.model)


class BxTreeMachine(RuleBasedStateMachine):
    """The B^x-tree against the same dict-of-motions model."""

    @initialize()
    def setup(self) -> None:
        self.tnow = 0
        self.tree = BxTree(
            DOMAIN, horizon=15, phase_length=4, bits=5, fanout_override=6, tnow=0
        )
        self.model = {}

    @rule(oid=oid_strategy, x=coord, y=coord, vx=velocity, vy=velocity)
    def report(self, oid, x, y, vx, vy):
        motion = Motion(oid, self.tnow, x, y, vx, vy)
        if oid in self.model:
            self.tree.delete(self.model[oid])
        self.tree.insert(motion)
        self.model[oid] = motion

    @precondition(lambda self: self.model)
    @rule(pick=st.randoms(use_true_random=False))
    def retire(self, pick):
        oid = pick.choice(sorted(self.model))
        self.tree.delete(self.model.pop(oid))

    @rule(dt=st.integers(1, 4))
    def advance(self, dt):
        self.tnow += dt
        self.tree.on_advance(self.tnow)

    @rule(
        x1=st.floats(0, 70),
        y1=st.floats(0, 70),
        w=st.floats(5, 40),
        h=st.floats(5, 40),
        dt=st.integers(0, 8),
    )
    def query_matches_model(self, x1, y1, w, h, dt):
        rect = Rect(x1, y1, x1 + w, y1 + h)
        qt = self.tnow + dt
        got = sorted(m.oid for m in self.tree.range_query(rect, qt, charge_io=False))
        want = []
        for motion in self.model.values():
            px, py = motion.position_at(qt)
            if rect.x1 <= px <= rect.x2 and rect.y1 <= py <= rect.y2:
                want.append(motion.oid)
        assert got == sorted(want)

    @invariant()
    def structure_valid(self):
        self.tree.validate()


class ServerConsistencyMachine(RuleBasedStateMachine):
    """The full server: histogram counts must track the object table.

    After any interleaving of reports, retires and clock advances, the
    density histogram's total at any maintained timestamp must equal the
    number of live, in-domain objects whose last report covers it.
    """

    @initialize()
    def setup(self) -> None:
        from tests.conftest import small_system_config
        from repro.core.system import PDRServer

        self.server = PDRServer(small_system_config(), expected_objects=64)
        self.gen = np.random.default_rng(0)

    @rule(oid=st.integers(0, 15), x=st.floats(1, 99), y=st.floats(1, 99),
          vx=velocity, vy=velocity)
    def report(self, oid, x, y, vx, vy):
        self.server.report(oid, x, y, vx, vy)

    @precondition(lambda self: len(self.server.table) > 0)
    @rule(pick=st.randoms(use_true_random=False))
    def retire(self, pick):
        oids = [m.oid for m in self.server.table.motions()]
        self.server.table.retire(pick.choice(sorted(oids)))

    @rule(dt=st.integers(1, 3))
    def advance(self, dt):
        self.server.advance_to(self.server.tnow + dt)

    @invariant()
    def histogram_tracks_table(self):
        server = self.server
        horizon = server.config.horizon
        domain = server.config.domain
        for qt in (server.tnow, server.tnow + horizon // 2):
            expected = 0
            for motion in server.table.motions():
                if not (motion.t_ref <= qt <= motion.t_ref + horizon):
                    continue
                x, y = motion.position_at(qt)
                if domain.contains_point(x, y):
                    expected += 1
            assert server.histogram.total_at(qt) == expected


TestTPRTreeStateful = TPRTreeMachine.TestCase
TestTPRTreeStateful.settings = settings(
    max_examples=15, stateful_step_count=30, deadline=None
)
TestBxTreeStateful = BxTreeMachine.TestCase
TestBxTreeStateful.settings = settings(
    max_examples=15, stateful_step_count=30, deadline=None
)
TestServerConsistencyStateful = ServerConsistencyMachine.TestCase
TestServerConsistencyStateful.settings = settings(
    max_examples=8, stateful_step_count=20, deadline=None
)
