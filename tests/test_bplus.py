"""Tests for the B+-tree substrate."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.errors import IndexError_, InvalidParameterError
from repro.index.bplus import BPlusTree
from repro.storage.buffer import BufferPool


class TestBasics:
    def test_empty(self):
        tree = BPlusTree(fanout=4)
        assert len(tree) == 0
        assert tree.search(5) == []
        assert tree.range_scan(0, 100) == []
        assert tree.height == 1

    def test_insert_search(self):
        tree = BPlusTree(fanout=4)
        tree.insert(10, "a")
        tree.insert(5, "b")
        tree.insert(20, "c")
        assert tree.search(10) == ["a"]
        assert tree.search(5) == ["b"]
        assert tree.search(7) == []
        assert len(tree) == 3

    def test_duplicates(self):
        tree = BPlusTree(fanout=4)
        for i, v in enumerate("abc"):
            tree.insert(7, v)
        assert sorted(tree.search(7)) == ["a", "b", "c"]

    def test_split_grows_height(self):
        tree = BPlusTree(fanout=4)
        for key in range(50):
            tree.insert(key, key)
        assert tree.height >= 3
        tree.validate()
        for key in range(50):
            assert tree.search(key) == [key]

    def test_fanout_validation(self):
        with pytest.raises(InvalidParameterError):
            BPlusTree(fanout=2)


class TestRangeScan:
    def test_inclusive_bounds(self):
        tree = BPlusTree(fanout=4)
        for key in range(0, 100, 10):
            tree.insert(key, key)
        got = [k for k, _v in tree.range_scan(20, 50)]
        assert got == [20, 30, 40, 50]

    def test_empty_range(self):
        tree = BPlusTree(fanout=4)
        tree.insert(5, "x")
        assert tree.range_scan(10, 5) == []
        assert tree.range_scan(6, 9) == []

    def test_sorted_output_with_duplicates(self):
        tree = BPlusTree(fanout=4)
        gen = np.random.default_rng(0)
        keys = gen.integers(0, 30, size=200)
        for i, key in enumerate(keys):
            tree.insert(int(key), i)
        got = [k for k, _v in tree.range_scan(0, 30)]
        assert got == sorted(keys.tolist())

    @given(
        st.lists(st.integers(0, 500), max_size=120),
        st.integers(0, 500),
        st.integers(0, 500),
    )
    @settings(max_examples=40, deadline=None)
    def test_matches_reference(self, keys, a, b):
        lo, hi = min(a, b), max(a, b)
        tree = BPlusTree(fanout=5)
        for i, key in enumerate(keys):
            tree.insert(key, i)
        tree.validate()
        got = sorted(k for k, _v in tree.range_scan(lo, hi))
        want = sorted(k for k in keys if lo <= k <= hi)
        assert got == want


class TestDelete:
    def test_delete_single(self):
        tree = BPlusTree(fanout=4)
        tree.insert(5, "x")
        assert tree.delete(5) == "x"
        assert len(tree) == 0
        assert tree.search(5) == []

    def test_delete_with_match(self):
        tree = BPlusTree(fanout=4)
        tree.insert(5, "a")
        tree.insert(5, "b")
        assert tree.delete(5, match=lambda v: v == "b") == "b"
        assert tree.search(5) == ["a"]

    def test_delete_missing_raises(self):
        tree = BPlusTree(fanout=4)
        tree.insert(5, "a")
        with pytest.raises(IndexError_):
            tree.delete(6)
        with pytest.raises(IndexError_):
            tree.delete(5, match=lambda v: v == "zzz")

    def test_delete_everything_after_splits(self):
        tree = BPlusTree(fanout=4)
        gen = np.random.default_rng(1)
        keys = gen.permutation(80)
        for key in keys:
            tree.insert(int(key), int(key))
        for key in keys:
            assert tree.delete(int(key)) == int(key)
        assert len(tree) == 0
        tree.validate()
        assert tree.range_scan(0, 100) == []

    @given(st.lists(st.integers(0, 60), max_size=80), st.integers(0, 10_000))
    @settings(max_examples=30, deadline=None)
    def test_interleaved_against_reference(self, keys, seed):
        gen = np.random.default_rng(seed)
        tree = BPlusTree(fanout=5)
        reference = []
        for i, key in enumerate(keys):
            tree.insert(key, i)
            reference.append((key, i))
            if reference and gen.random() < 0.35:
                victim = reference.pop(int(gen.integers(len(reference))))
                tree.delete(victim[0], match=lambda v, w=victim[1]: v == w)
        tree.validate()
        got = sorted(k for k, _v in tree.range_scan(0, 60))
        assert got == sorted(k for k, _v in reference)


class TestIO:
    def test_range_scan_charges_buffer(self):
        pool = BufferPool(capacity_pages=2)
        tree = BPlusTree(fanout=4, buffer_pool=pool)
        for key in range(60):
            tree.insert(key, key)
        pool.reset_stats()
        tree.range_scan(0, 59)
        assert pool.stats.accesses > 0

    def test_charge_io_flag_off(self):
        pool = BufferPool(capacity_pages=2)
        tree = BPlusTree(fanout=4, buffer_pool=pool)
        for key in range(60):
            tree.insert(key, key)
        pool.reset_stats()
        tree.range_scan(0, 59, charge_io=False)
        assert pool.stats.accesses == 0

    def test_inserts_not_charged(self):
        pool = BufferPool(capacity_pages=2)
        tree = BPlusTree(fanout=4, buffer_pool=pool)
        for key in range(60):
            tree.insert(key, key)
        assert pool.stats.accesses == 0
