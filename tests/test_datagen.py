"""Tests for the synthetic road network and trip simulation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.errors import DatagenError
from repro.core.geometry import Rect
from repro.datagen.network import Hub, RoadNetwork, synthetic_metro
from repro.datagen.trips import SpeedModel, TripSimulator
from repro.motion.table import ObjectTable

DOMAIN = Rect(0.0, 0.0, 1000.0, 1000.0)


class TestSyntheticMetro:
    def test_node_count(self):
        net = synthetic_metro(DOMAIN, grid_n=10)
        assert net.node_count == 100

    def test_positions_inside_domain(self):
        net = synthetic_metro(DOMAIN, grid_n=15, seed=2)
        assert (net.positions[:, 0] >= DOMAIN.x1).all()
        assert (net.positions[:, 0] <= DOMAIN.x2).all()
        assert (net.positions[:, 1] >= DOMAIN.y1).all()
        assert (net.positions[:, 1] <= DOMAIN.y2).all()

    def test_lattice_adjacency(self):
        net = synthetic_metro(DOMAIN, grid_n=5)
        # Corner nodes have 2 neighbours, edges 3, interior 4.
        degrees = sorted(len(nbrs) for nbrs in net.neighbors)
        assert degrees[0] == 2
        assert degrees[-1] == 4
        assert sum(degrees) == 2 * (2 * 5 * 4)  # edges of a 5x5 grid graph

    def test_weights_peak_at_hubs(self):
        hub = Hub(500.0, 500.0, 10.0, 60.0)
        net = synthetic_metro(DOMAIN, grid_n=20, hubs=[hub], base_weight=0.01)
        centre = net.nearest_node(500.0, 500.0)
        corner = net.nearest_node(0.0, 0.0)
        assert net.weights[centre] > 10 * net.weights[corner]

    def test_sampling_biased_toward_hubs(self):
        hub = Hub(500.0, 500.0, 20.0, 50.0)
        net = synthetic_metro(DOMAIN, grid_n=20, hubs=[hub], base_weight=0.01)
        gen = np.random.default_rng(0)
        samples = net.sample_nodes(gen, 2000)
        positions = net.positions[samples]
        dist = np.hypot(positions[:, 0] - 500, positions[:, 1] - 500)
        # Most samples land near the hub.
        assert (dist < 200).mean() > 0.5

    def test_greedy_step_approaches_destination(self):
        net = synthetic_metro(DOMAIN, grid_n=10, seed=1)
        gen = np.random.default_rng(0)
        current = net.nearest_node(50.0, 50.0)
        destination = net.nearest_node(950.0, 950.0)
        for _ in range(40):
            nxt = net.greedy_step(current, destination, gen)
            if nxt == current:
                break
            d_now = np.hypot(*(net.positions[current] - net.positions[destination]))
            d_next = np.hypot(*(net.positions[nxt] - net.positions[destination]))
            assert d_next < d_now
            current = nxt
        assert current == destination

    def test_greedy_step_at_destination(self):
        net = synthetic_metro(DOMAIN, grid_n=5)
        gen = np.random.default_rng(0)
        assert net.greedy_step(7, 7, gen) == 7

    def test_validation(self):
        with pytest.raises(DatagenError):
            synthetic_metro(DOMAIN, grid_n=1)


class TestSpeedModel:
    def test_samples_in_range(self):
        model = SpeedModel(v_min_mph=25, v_max_mph=100, minutes_per_timestamp=1.0)
        gen = np.random.default_rng(0)
        samples = [model.sample(gen) for _ in range(500)]
        lo = 25.0 / 60.0
        hi = 100.0 / 60.0
        assert all(lo <= s <= hi for s in samples)

    def test_skewed_toward_low_speeds(self):
        model = SpeedModel()
        gen = np.random.default_rng(0)
        samples = np.array([model.sample(gen) for _ in range(2000)])
        midpoint = (samples.min() + samples.max()) / 2
        assert (samples < midpoint).mean() > 0.6  # right-skewed

    def test_validation(self):
        with pytest.raises(DatagenError):
            SpeedModel(v_min_mph=0, v_max_mph=10)
        with pytest.raises(DatagenError):
            SpeedModel(v_min_mph=50, v_max_mph=40)
        with pytest.raises(DatagenError):
            SpeedModel(minutes_per_timestamp=0)


class TestTripSimulator:
    def _sim(self, n=50, u=10, seed=0, grid_n=8):
        net = synthetic_metro(DOMAIN, grid_n=grid_n, seed=seed)
        return TripSimulator(net, n_objects=n, update_interval=u, seed=seed)

    def test_initialize_reports_all_objects(self):
        table = ObjectTable()
        sim = self._sim(n=30)
        sim.initialize(table)
        assert len(table) == 30
        assert sim.reports_issued == 30

    def test_double_initialize_rejected(self):
        table = ObjectTable()
        sim = self._sim()
        sim.initialize(table)
        with pytest.raises(DatagenError):
            sim.initialize(table)

    def test_run_requires_initialize(self):
        with pytest.raises(DatagenError):
            self._sim().run_until(ObjectTable(), 5)

    def test_objects_stay_roughly_in_domain(self):
        table = ObjectTable()
        sim = self._sim(n=40, u=5)
        sim.initialize(table)
        sim.run_until(table, 50)
        margin = 5.0  # linear prediction may overshoot one report period
        for _oid, x, y in table.positions_at(table.tnow):
            assert DOMAIN.x1 - margin <= x <= DOMAIN.x2 + margin
            assert DOMAIN.y1 - margin <= y <= DOMAIN.y2 + margin

    def test_every_object_reports_within_u(self):
        table = ObjectTable()
        u = 7
        sim = self._sim(n=40, u=u)
        sim.initialize(table)
        sim.run_until(table, 3 * u)
        for motion in table.motions():
            assert table.tnow - motion.t_ref <= u

    def test_reports_accumulate(self):
        table = ObjectTable()
        sim = self._sim(n=40, u=5)
        sim.initialize(table)
        sim.run_until(table, 20)
        # Every object must have re-reported at least 20/5 - 1 times.
        assert sim.reports_issued >= 40 * 4

    def test_deterministic_given_seed(self):
        t1, t2 = ObjectTable(), ObjectTable()
        self._sim(seed=9).initialize(t1)
        self._sim(seed=9).initialize(t2)
        for oid in range(50):
            a, b = t1.motion_of(oid), t2.motion_of(oid)
            assert (a.x, a.y, a.vx, a.vy) == (b.x, b.y, b.vx, b.vy)

    def test_velocity_magnitudes_match_speed_model(self):
        table = ObjectTable()
        sim = self._sim(n=60)
        sim.initialize(table)
        hi = 100.0 / 60.0
        for motion in table.motions():
            assert motion.speed <= hi + 1e-9

    def test_validation(self):
        net = synthetic_metro(DOMAIN, grid_n=5)
        with pytest.raises(DatagenError):
            TripSimulator(net, n_objects=0, update_interval=5)
        with pytest.raises(DatagenError):
            TripSimulator(net, n_objects=5, update_interval=0)

    def test_cannot_run_backwards(self):
        table = ObjectTable()
        sim = self._sim()
        sim.initialize(table)
        sim.run_until(table, 5)
        with pytest.raises(DatagenError):
            sim.run_until(table, 3)
