"""Tests for the Z-order curve and the B^x-tree."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.errors import IndexError_, InvalidParameterError
from repro.core.geometry import Rect
from repro.index.bx import BxTree
from repro.index.zorder import ZGrid, deinterleave, interleave
from repro.motion.model import Motion

DOMAIN = Rect(0.0, 0.0, 100.0, 100.0)


class TestZOrder:
    @given(st.integers(0, 2**16 - 1), st.integers(0, 2**16 - 1))
    def test_roundtrip(self, ix, iy):
        code = interleave(ix, iy)
        gx, gy = deinterleave(code)
        assert int(gx) == ix
        assert int(gy) == iy

    def test_known_values(self):
        assert int(interleave(0, 0)) == 0
        assert int(interleave(1, 0)) == 1
        assert int(interleave(0, 1)) == 2
        assert int(interleave(1, 1)) == 3
        assert int(interleave(2, 0)) == 4

    def test_vectorised(self):
        ix = np.array([0, 1, 2, 3])
        iy = np.array([0, 0, 1, 3])
        codes = interleave(ix, iy)
        gx, gy = deinterleave(codes)
        assert (gx == ix).all()
        assert (gy == iy).all()


class TestZGrid:
    def test_cell_of_clamps(self):
        grid = ZGrid(DOMAIN, bits=4)  # 16x16 cells
        assert grid.cell_of(0.0, 0.0) == (0, 0)
        assert grid.cell_of(99.9, 99.9) == (15, 15)
        assert grid.cell_of(-5.0, 120.0) == (0, 15)

    def test_validation(self):
        with pytest.raises(InvalidParameterError):
            ZGrid(DOMAIN, bits=0)
        with pytest.raises(InvalidParameterError):
            ZGrid(DOMAIN, bits=17)

    def test_rect_runs_cover_rect_cells(self):
        grid = ZGrid(DOMAIN, bits=4)
        rect = Rect(10.0, 10.0, 40.0, 30.0)
        runs = grid.rect_runs(rect)
        covered = set()
        for lo, hi in runs:
            covered.update(range(lo, hi + 1))
        # Every cell whose region intersects the rect must be covered.
        for ix in range(16):
            for iy in range(16):
                cx1, cy1 = ix * 6.25, iy * 6.25
                cell = Rect(cx1, cy1, cx1 + 6.25, cy1 + 6.25)
                if cell.intersects(rect):
                    assert int(interleave(ix, iy)) in covered

    def test_runs_are_sorted_and_disjoint(self):
        grid = ZGrid(DOMAIN, bits=5)
        runs = grid.rect_runs(Rect(5, 5, 77, 33))
        for (a_lo, a_hi), (b_lo, b_hi) in zip(runs, runs[1:]):
            assert a_hi + 1 < b_lo
        assert all(lo <= hi for lo, hi in runs)

    def test_whole_domain_is_one_run(self):
        grid = ZGrid(DOMAIN, bits=4)
        runs = grid.rect_runs(DOMAIN)
        assert runs == [(0, 255)]


def random_motions(n, seed=0, tnow=0):
    gen = np.random.default_rng(seed)
    return [
        Motion(
            oid=i,
            t_ref=tnow,
            x=float(gen.uniform(0, 100)),
            y=float(gen.uniform(0, 100)),
            vx=float(gen.uniform(-2, 2)),
            vy=float(gen.uniform(-2, 2)),
        )
        for i in range(n)
    ]


def brute_range(motions, rect, qt):
    out = []
    for m in motions:
        x, y = m.position_at(qt)
        if rect.x1 <= x <= rect.x2 and rect.y1 <= y <= rect.y2:
            out.append(m.oid)
    return sorted(out)


def make_bx(**kwargs):
    defaults = dict(domain=DOMAIN, horizon=20, phase_length=5, bits=6,
                    fanout_override=8)
    defaults.update(kwargs)
    return BxTree(**defaults)


class TestBxTreeBasics:
    def test_label_timestamp(self):
        bx = make_bx(phase_length=5)
        assert bx.label_timestamp(0) == 5
        assert bx.label_timestamp(4) == 5
        assert bx.label_timestamp(5) == 10
        assert bx.label_timestamp(12) == 15

    def test_insert_delete_roundtrip(self):
        bx = make_bx()
        m = Motion(1, 0, 50.0, 50.0, 1.0, 0.0)
        bx.insert(m)
        assert len(bx) == 1
        bx.validate()
        bx.delete(m)
        assert len(bx) == 0
        bx.validate()

    def test_duplicate_insert_rejected(self):
        bx = make_bx()
        bx.insert(Motion(1, 0, 1, 1, 0, 0))
        with pytest.raises(IndexError_):
            bx.insert(Motion(1, 0, 2, 2, 0, 0))

    def test_delete_unknown_rejected(self):
        with pytest.raises(IndexError_):
            make_bx().delete(Motion(7, 0, 0, 0, 0, 0))

    def test_query_before_tnow_rejected(self):
        bx = make_bx(tnow=5)
        with pytest.raises(IndexError_):
            bx.range_query(Rect(0, 0, 1, 1), 4)

    def test_max_speed_tracking(self):
        bx = make_bx()
        bx.insert(Motion(0, 0, 1, 1, 3.0, 4.0))
        assert bx.max_speed == pytest.approx(5.0)


class TestBxTreeQueries:
    @given(
        st.integers(1, 60),
        st.integers(0, 10_000),
        st.integers(0, 15),
        st.tuples(st.floats(0, 80), st.floats(0, 80), st.floats(5, 50), st.floats(5, 50)),
    )
    @settings(max_examples=30, deadline=None)
    def test_matches_bruteforce(self, n, seed, qt, rect_params):
        x1, y1, w, h = rect_params
        rect = Rect(x1, y1, x1 + w, y1 + h)
        motions = random_motions(n, seed=seed)
        bx = make_bx()
        for m in motions:
            bx.insert(m)
        hits = sorted(m.oid for m in bx.range_query(rect, qt))
        assert hits == brute_range(motions, rect, qt)

    def test_matches_tpr_tree(self):
        """Both indexes answer identically — FR can use either."""
        from repro.index.tree import TPRTree

        motions = random_motions(120, seed=4)
        bx = make_bx()
        tpr = TPRTree(horizon=20, fanout_override=8)
        for m in motions:
            bx.insert(m)
            tpr.insert(m)
        rect = Rect(20, 30, 70, 80)
        for qt in (0, 6, 15):
            got_bx = sorted(m.oid for m in bx.range_query(rect, qt))
            got_tpr = sorted(m.oid for m in tpr.range_query(rect, qt, charge_io=False))
            assert got_bx == got_tpr

    def test_matches_bruteforce_after_updates(self):
        gen = np.random.default_rng(5)
        bx = make_bx()
        live = {}
        for step in range(4):
            tnow = step * 3
            bx.on_advance(tnow)
            for oid in range(40):
                new = Motion(oid, tnow, float(gen.uniform(0, 100)),
                             float(gen.uniform(0, 100)), float(gen.uniform(-2, 2)),
                             float(gen.uniform(-2, 2)))
                if oid in live:
                    bx.delete(live[oid])
                live[oid] = new
                bx.insert(new)
        bx.validate()
        rect = Rect(10, 10, 90, 60)
        qt = 12
        got = sorted(m.oid for m in bx.range_query(rect, qt))
        assert got == brute_range(live.values(), rect, qt)

    def test_objects_leaving_domain_still_found_inside(self):
        # Object near the border moving out: at the label timestamp its
        # position is outside the domain (clamped code), but queries at
        # earlier times must still find it.
        bx = make_bx(phase_length=10)
        m = Motion(0, 0, 98.0, 50.0, 1.5, 0.0)  # outside from t ~ 1.3
        bx.insert(m)
        hits = bx.range_query(Rect(95, 45, 100, 55), 0)
        assert [h.oid for h in hits] == [0]

    def test_io_charged_only_on_queries(self):
        from repro.storage.buffer import BufferPool

        pool = BufferPool(capacity_pages=2)
        bx = make_bx(buffer_pool=pool)
        for m in random_motions(60, seed=1):
            bx.insert(m)
        assert pool.stats.accesses == 0
        bx.range_query(Rect(0, 0, 100, 100), 0)
        assert pool.stats.accesses > 0


class TestFRWithBxIndex:
    def test_fr_exact_with_bx_backend(self):
        """FRMethod over a B^x-tree equals FRMethod over a TPR-tree."""
        from repro.histogram.density_histogram import DensityHistogram
        from repro.index.tree import TPRTree
        from repro.methods.fr import FRMethod
        from repro.motion.table import ObjectTable
        from repro.core.query import SnapshotPDRQuery

        table = ObjectTable()
        hist = DensityHistogram(DOMAIN, m=20, horizon=12)
        bx = BxTree(DOMAIN, horizon=12, phase_length=3, bits=6, fanout_override=8)
        tpr = TPRTree(horizon=12, fanout_override=8)
        table.add_listener(hist)
        table.add_listener(bx)
        table.add_listener(tpr)
        gen = np.random.default_rng(9)
        for oid in range(120):
            if oid % 2 == 0:
                x, y = gen.normal([40, 60], 4, size=2)
                x, y = float(np.clip(x, 1, 99)), float(np.clip(y, 1, 99))
            else:
                x, y = float(gen.uniform(1, 99)), float(gen.uniform(1, 99))
            table.report(oid, x, y, float(gen.uniform(-1, 1)), float(gen.uniform(-1, 1)))

        query = SnapshotPDRQuery(rho=0.05, l=10.0, qt=4)
        with_bx = FRMethod(hist, bx).query(query)
        with_tpr = FRMethod(hist, tpr).query(query)
        assert with_bx.regions.symmetric_difference_area(
            with_tpr.regions
        ) == pytest.approx(0.0, abs=1e-9)
