"""Tests for marching-squares contour extraction."""

from __future__ import annotations

import numpy as np
import pytest

from repro.chebyshev.contours import contour_segments, contour_segments_from_grid
from repro.chebyshev.grid import ChebSurface, GridSpec
from repro.core.errors import InvalidParameterError
from repro.core.geometry import Rect

DOMAIN = Rect(0.0, 0.0, 100.0, 100.0)


def ramp_values(n):
    """values[ix, iy] = x coordinate of the sample centre."""
    xs = (np.arange(n) + 0.5) * (100.0 / n)
    return np.tile(xs[:, None], (1, n))


class TestFromGrid:
    def test_no_crossing_no_segments(self):
        values = np.zeros((8, 8))
        assert contour_segments_from_grid(values, DOMAIN, level=1.0) == []
        assert contour_segments_from_grid(values + 5, DOMAIN, level=1.0) == []

    def test_ramp_contour_is_vertical_line(self):
        values = ramp_values(20)
        segments = contour_segments_from_grid(values, DOMAIN, level=50.0)
        assert segments
        for (x1, _y1), (x2, _y2) in segments:
            assert x1 == pytest.approx(50.0, abs=100.0 / 20)
            assert x2 == pytest.approx(50.0, abs=100.0 / 20)

    def test_ramp_contour_spans_height(self):
        values = ramp_values(20)
        segments = contour_segments_from_grid(values, DOMAIN, level=50.0)
        ys = [p[1] for seg in segments for p in seg]
        assert min(ys) < 10.0
        assert max(ys) > 90.0

    def test_circle_contour_length(self):
        n = 64
        xs = (np.arange(n) + 0.5) * (100.0 / n)
        xx, yy = np.meshgrid(xs, xs, indexing="ij")
        values = -np.hypot(xx - 50, yy - 50)  # level -r = circle of radius r
        segments = contour_segments_from_grid(values, DOMAIN, level=-20.0)
        length = sum(
            float(np.hypot(b[0] - a[0], b[1] - a[1])) for a, b in segments
        )
        assert length == pytest.approx(2 * np.pi * 20.0, rel=0.1)

    def test_segment_points_on_cell_edges(self):
        values = ramp_values(10)
        for a, b in contour_segments_from_grid(values, DOMAIN, level=37.0):
            for x, y in (a, b):
                assert 0.0 <= x <= 100.0
                assert 0.0 <= y <= 100.0

    def test_too_small_grid_raises(self):
        with pytest.raises(InvalidParameterError):
            contour_segments_from_grid(np.zeros((1, 5)), DOMAIN, 0.0)

    def test_saddle_cases_produce_two_segments(self):
        values = np.array([[1.0, 0.0], [0.0, 1.0]])
        segments = contour_segments_from_grid(values, DOMAIN, level=0.5)
        assert len(segments) == 2


class TestFromSurface:
    def test_contour_of_hotspot_encircles_it(self):
        spec = GridSpec(DOMAIN, g=2, k=6)
        surface = ChebSurface(spec, spec.zero_coefficients())
        surface.add_rect(Rect(40, 40, 60, 60), height=4.0)
        segments = contour_segments(surface, level=2.0, resolution=48)
        assert segments
        cx = np.mean([p[0] for seg in segments for p in seg])
        cy = np.mean([p[1] for seg in segments for p in seg])
        assert cx == pytest.approx(50.0, abs=6.0)
        assert cy == pytest.approx(50.0, abs=6.0)
