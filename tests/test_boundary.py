"""Tests for boundary-ring extraction and GeoJSON export."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.boundary import boundary_rings, regions_to_geojson, ring_signed_area
from repro.core.geometry import Rect
from repro.core.regions import RegionSet


def region(*rects):
    return RegionSet([Rect(*r) for r in rects])


class TestSignedArea:
    def test_ccw_positive(self):
        assert ring_signed_area([(0, 0), (1, 0), (1, 1), (0, 1)]) == pytest.approx(1.0)

    def test_cw_negative(self):
        assert ring_signed_area([(0, 0), (0, 1), (1, 1), (1, 0)]) == pytest.approx(-1.0)

    def test_degenerate(self):
        assert ring_signed_area([(0, 0), (1, 1)]) == 0.0


class TestBoundaryRings:
    def test_empty(self):
        assert boundary_rings(RegionSet()) == []

    def test_single_rect(self):
        rings = boundary_rings(region((0, 0, 4, 3)))
        assert len(rings) == 1
        ring = rings[0]
        assert len(ring) == 4
        assert set(ring) == {(0, 0), (4, 0), (4, 3), (0, 3)}
        assert ring_signed_area(ring) == pytest.approx(12.0)

    def test_two_disjoint_rects(self):
        rings = boundary_rings(region((0, 0, 1, 1), (5, 5, 7, 6)))
        assert len(rings) == 2
        areas = sorted(ring_signed_area(r) for r in rings)
        assert areas == pytest.approx([1.0, 2.0])

    def test_adjacent_rects_merge(self):
        rings = boundary_rings(region((0, 0, 2, 2), (2, 0, 4, 2)))
        assert len(rings) == 1
        assert ring_signed_area(rings[0]) == pytest.approx(8.0)
        assert len(rings[0]) == 4  # collinear vertices merged

    def test_l_shape(self):
        rings = boundary_rings(region((0, 0, 2, 4), (2, 0, 4, 2)))
        assert len(rings) == 1
        ring = rings[0]
        assert len(ring) == 6
        assert ring_signed_area(ring) == pytest.approx(12.0)

    def test_donut_has_hole(self):
        # A 6x6 frame around an empty 2x2 centre.
        frame = region(
            (0, 0, 6, 2), (0, 4, 6, 6), (0, 2, 2, 4), (4, 2, 6, 4)
        )
        rings = boundary_rings(frame)
        assert len(rings) == 2
        areas = sorted(ring_signed_area(r) for r in rings)
        assert areas[0] == pytest.approx(-4.0)  # hole, clockwise
        assert areas[1] == pytest.approx(36.0)  # outer, counter-clockwise

    def test_signed_areas_sum_to_region_area(self):
        rs = region((0, 0, 5, 5), (3, 3, 8, 8), (10, 0, 12, 2))
        rings = boundary_rings(rs)
        assert sum(ring_signed_area(r) for r in rings) == pytest.approx(rs.area())

    @given(
        st.lists(
            st.tuples(st.integers(0, 12), st.integers(0, 12),
                      st.integers(1, 5), st.integers(1, 5)),
            min_size=1, max_size=8,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_signed_area_identity_property(self, rect_params):
        rs = RegionSet([Rect(x, y, x + w, y + h) for x, y, w, h in rect_params])
        rings = boundary_rings(rs)
        assert sum(ring_signed_area(r) for r in rings) == pytest.approx(rs.area())

    @given(
        st.lists(
            st.tuples(st.integers(0, 12), st.integers(0, 12),
                      st.integers(1, 5), st.integers(1, 5)),
            min_size=1, max_size=6,
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_rings_are_closed_rectilinear(self, rect_params):
        rs = RegionSet([Rect(x, y, x + w, y + h) for x, y, w, h in rect_params])
        for ring in boundary_rings(rs):
            assert len(ring) >= 4
            for (x1, y1), (x2, y2) in zip(ring, ring[1:] + ring[:1]):
                assert (x1 == x2) != (y1 == y2)  # axis-parallel, non-degenerate


class TestGeoJson:
    def test_simple_polygon(self):
        geo = regions_to_geojson(region((0, 0, 2, 2)))
        assert geo["type"] == "MultiPolygon"
        assert len(geo["coordinates"]) == 1
        outer = geo["coordinates"][0][0]
        assert outer[0] == outer[-1]  # closed per GeoJSON
        assert len(outer) == 5

    def test_hole_assigned_to_containing_polygon(self):
        frame = region((0, 0, 6, 2), (0, 4, 6, 6), (0, 2, 2, 4), (4, 2, 6, 4))
        island = region((10, 10, 12, 12))
        geo = regions_to_geojson(frame.union(island))
        assert len(geo["coordinates"]) == 2
        with_hole = [poly for poly in geo["coordinates"] if len(poly) == 2]
        assert len(with_hole) == 1
        # The hole's vertices lie strictly inside the frame's bounding box.
        hole = with_hole[0][1]
        assert all(0 < x < 6 and 0 < y < 6 for x, y in hole)

    def test_empty(self):
        geo = regions_to_geojson(RegionSet())
        assert geo["coordinates"] == []
