"""Tests for the free-space random-walk workloads."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.errors import DatagenError
from repro.core.geometry import Rect
from repro.datagen.pointsets import (
    GaussianCluster,
    RandomWalkWorkload,
    clustered_workload,
    uniform_workload,
)
from repro.motion.table import ObjectTable

DOMAIN = Rect(0.0, 0.0, 100.0, 100.0)


class TestConstruction:
    def test_validation(self):
        with pytest.raises(DatagenError):
            RandomWalkWorkload(DOMAIN, 0, 5)
        with pytest.raises(DatagenError):
            RandomWalkWorkload(DOMAIN, 5, 0)
        with pytest.raises(DatagenError):
            RandomWalkWorkload(DOMAIN, 5, 5, max_speed=0)
        with pytest.raises(DatagenError):
            GaussianCluster(0, 0, sigma=0)
        with pytest.raises(DatagenError):
            clustered_workload(DOMAIN, 5, 5, n_clusters=0)

    def test_double_initialize_rejected(self):
        table = ObjectTable()
        w = uniform_workload(DOMAIN, 10, 5)
        w.initialize(table)
        with pytest.raises(DatagenError):
            w.initialize(table)

    def test_run_requires_initialize(self):
        with pytest.raises(DatagenError):
            uniform_workload(DOMAIN, 10, 5).run_until(ObjectTable(), 3)


class TestBehaviour:
    def test_all_objects_reported(self):
        table = ObjectTable()
        w = uniform_workload(DOMAIN, 40, 5, seed=1)
        w.initialize(table)
        assert len(table) == 40

    def test_objects_stay_in_domain(self):
        table = ObjectTable()
        w = uniform_workload(DOMAIN, 50, 6, seed=2)
        w.initialize(table)
        w.run_until(table, 40)
        for _oid, x, y in table.positions_at(table.tnow):
            assert DOMAIN.x1 <= x <= DOMAIN.x2
            assert DOMAIN.y1 <= y <= DOMAIN.y2

    def test_reports_within_update_interval(self):
        table = ObjectTable()
        u = 4
        w = uniform_workload(DOMAIN, 30, u, seed=3)
        w.initialize(table)
        w.run_until(table, 3 * u)
        for motion in table.motions():
            assert table.tnow - motion.t_ref <= u

    def test_speed_bounded(self):
        table = ObjectTable()
        w = uniform_workload(DOMAIN, 40, 5, max_speed=2.0, seed=4)
        w.initialize(table)
        w.run_until(table, 10)
        for motion in table.motions():
            assert motion.speed <= 2.0 + 1e-9

    def test_clustered_placement_is_skewed(self):
        table = ObjectTable()
        w = clustered_workload(DOMAIN, 400, 5, n_clusters=2, seed=5)
        w.initialize(table)
        xs = np.array([x for _o, x, _y in table.positions_at(0)])
        ys = np.array([y for _o, _x, y in table.positions_at(0)])
        # A strongly clustered set has much lower dispersion than uniform.
        uniform_std = 100.0 / np.sqrt(12)
        assert xs.std() < uniform_std or ys.std() < uniform_std

    def test_deterministic_given_seed(self):
        t1, t2 = ObjectTable(), ObjectTable()
        clustered_workload(DOMAIN, 30, 5, seed=7).initialize(t1)
        clustered_workload(DOMAIN, 30, 5, seed=7).initialize(t2)
        for oid in range(30):
            a, b = t1.motion_of(oid), t2.motion_of(oid)
            assert (a.x, a.y, a.vx, a.vy) == (b.x, b.y, b.vx, b.vy)


class TestEndToEndWithServer:
    def test_fr_equals_bruteforce_on_random_walks(self, small_config):
        from repro.core.system import PDRServer

        server = PDRServer(small_config, expected_objects=150)
        w = clustered_workload(
            small_config.domain, 150, small_config.max_update_interval,
            n_clusters=3, seed=11, max_speed=0.5,
        )
        w.initialize(server.table)
        w.run_until(server.table, 8)
        qt = server.tnow + 3
        exact = server.query("fr", qt=qt, varrho=3.0)
        oracle = server.query("bruteforce", qt=qt, varrho=3.0)
        assert exact.regions.symmetric_difference_area(
            oracle.regions
        ) == pytest.approx(0.0, abs=1e-6)
