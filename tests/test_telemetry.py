"""Unit and property tests for the telemetry layer.

Covers the metrics registry (counters/gauges/histograms, labels, reset
in place, the disabled fast path), the tracer (nesting, the no-op
degradations, the timing invariant), the slow-query log (retention
order, replayable exemplars) and the two contractual properties from the
observability work:

* child span durations sum to at most the parent duration, and
* the ``stage_seconds`` compatibility view in ``reliability_report`` is
  **bit-for-bit** equal to the trace-derived stage totals on a seeded
  workload (same floats, same addition order).
"""

from __future__ import annotations

import math
import threading

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from tests.conftest import populate_clustered, small_system_config
from repro import PDRServer
from repro.reliability.validation import ReliabilityConfig
from repro.telemetry import (
    TELEMETRY,
    MetricsRegistry,
    SlowQueryEntry,
    SlowQueryLog,
    Tracer,
)
from repro.telemetry.tracing import NOOP_SPAN


@pytest.fixture(autouse=True)
def clean_telemetry():
    """Zero the process-wide hub around every test; leave it enabled."""
    TELEMETRY.enable()
    TELEMETRY.reset()
    yield
    TELEMETRY.enable()
    TELEMETRY.reset()


# ----------------------------------------------------------------------
# registry
# ----------------------------------------------------------------------
class TestRegistry:
    def test_counter_counts_and_refuses_to_go_down(self):
        reg = MetricsRegistry()
        c = reg.counter("events_total", "events")
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5
        with pytest.raises(ValueError):
            c.inc(-1)

    def test_gauge_moves_both_ways(self):
        reg = MetricsRegistry()
        g = reg.gauge("lag")
        g.set(10)
        g.dec(4)
        g.inc(1)
        assert g.value == 7.0

    def test_histogram_buckets_sum_count_quantiles(self):
        reg = MetricsRegistry()
        h = reg.histogram("lat", buckets=(0.1, 1.0, 10.0))
        for v in (0.05, 0.5, 0.5, 5.0):
            h.observe(v)
        assert h.count == 4
        assert h.sum == pytest.approx(6.05)
        # p50 lands in the (0.1, 1.0] bucket, interpolated
        assert 0.1 <= h.quantile(0.5) <= 1.0
        # overflow observations clamp to the top bound
        h.observe(1000.0)
        assert h.quantile(1.0) == 10.0
        with pytest.raises(ValueError):
            h.quantile(1.5)

    def test_histogram_empty_quantile_is_nan(self):
        reg = MetricsRegistry()
        h = reg.histogram("lat")
        assert math.isnan(h.quantile(0.5))
        assert math.isnan(h.mean)

    def test_histogram_rejects_unsorted_bounds(self):
        reg = MetricsRegistry()
        with pytest.raises(ValueError):
            reg.histogram("bad", buckets=(1.0, 1.0, 2.0))

    def test_family_creation_is_idempotent_and_kind_checked(self):
        reg = MetricsRegistry()
        a = reg.counter("x_total", "first")
        b = reg.counter("x_total", "second help ignored")
        assert a is b
        with pytest.raises(ValueError):
            reg.gauge("x_total")

    def test_labels_resolve_children_positionally_and_by_name(self):
        reg = MetricsRegistry()
        fam = reg.counter("q_total", labelnames=("method", "outcome"))
        fam.labels("fr", "ok").inc()
        fam.labels(method="fr", outcome="ok").inc()
        assert fam.labels("fr", "ok").value == 2.0
        with pytest.raises(ValueError):
            fam.labels("fr")  # wrong arity
        with pytest.raises(ValueError):
            fam.labels("fr", outcome="ok")  # mixed styles

    def test_disabled_registry_is_a_noop(self):
        reg = MetricsRegistry(enabled=False)
        c = reg.counter("c_total")
        g = reg.gauge("g")
        h = reg.histogram("h")
        c.inc()
        g.set(5)
        h.observe(1.0)
        assert c.value == 0.0 and g.value == 0.0 and h.count == 0

    def test_reset_zeroes_in_place_preserving_identity(self):
        reg = MetricsRegistry()
        fam = reg.counter("c_total", labelnames=("k",))
        child = fam.labels("a")
        child.inc(7)
        hist = reg.histogram("h")
        hist.observe(0.5)
        reg.reset()
        assert fam.labels("a") is child  # same object, zeroed
        assert child.value == 0.0
        assert hist.count == 0 and hist.sum == 0.0

    def test_snapshot_shape(self):
        reg = MetricsRegistry()
        reg.counter("c_total", "help here", labelnames=("k",)).labels("a").inc()
        snap = reg.snapshot()
        (family,) = snap["families"]
        assert family["name"] == "c_total"
        assert family["type"] == "counter"
        assert family["series"] == [{"labels": {"k": "a"}, "value": 1.0}]


# ----------------------------------------------------------------------
# tracer
# ----------------------------------------------------------------------
class TestTracer:
    def test_trace_nests_into_a_tree(self):
        tracer = Tracer()
        with tracer.trace("query", method="fr") as root:
            with tracer.trace("rung") as rung:
                tracer.record_span("filter", 0.25)
        assert root.is_root and not rung.is_root
        assert [c.name for c in root.children] == ["rung"]
        assert rung.stages["filter"] == {"count": 1, "seconds": 0.25}
        assert root.trace_id == rung.trace_id
        assert root.duration >= rung.duration

    def test_span_without_open_trace_is_noop(self):
        tracer = Tracer()
        with tracer.span("orphan") as span:
            pass
        assert span is NOOP_SPAN
        tracer.record_span("orphan", 1.0)  # silently dropped
        assert tracer.current() is None

    def test_disabled_tracer_returns_noop(self):
        tracer = Tracer(enabled=False)
        with tracer.trace("query") as span:
            pass
        assert span is NOOP_SPAN

    def test_exception_annotates_span_and_pops_stack(self):
        tracer = Tracer()
        with pytest.raises(RuntimeError):
            with tracer.trace("query") as root:
                raise RuntimeError("boom")
        assert root.attrs["error"] == "RuntimeError"
        assert tracer.current() is None

    def test_stage_totals_sum_across_depths(self):
        tracer = Tracer()
        with tracer.trace("query") as root:
            tracer.record_span("fetch", 0.5)
            with tracer.trace("rung"):
                tracer.record_span("fetch", 0.125)
                tracer.record_span("fetch", 0.25)
        totals = root.stage_totals()
        # own accumulator first, then the rung's fold
        assert totals["fetch"] == (0.5 + (0.125 + 0.25))
        assert "rung" in totals

    def test_record_span_aggregates_counts_and_numeric_attrs(self):
        tracer = Tracer()
        with tracer.trace("query") as root:
            tracer.record_span("fetch", 0.1, objects=7)
            tracer.record_span("fetch", 0.2, objects=5)
        assert root.stages["fetch"] == {
            "count": 2, "seconds": 0.1 + 0.2, "objects": 12,
        }
        assert root.children == []  # aggregated, not materialized

    def test_thread_local_stacks_do_not_cross(self):
        tracer = Tracer()
        seen = {}

        def other():
            seen["current"] = tracer.current()

        with tracer.trace("query"):
            thread = threading.Thread(target=other)
            thread.start()
            thread.join()
        assert seen["current"] is None

    def test_walk_and_to_dict_round_trip_shape(self):
        tracer = Tracer()
        with tracer.trace("query") as root:
            tracer.record_span("filter", 0.1)
            with tracer.trace("rung"):
                pass
        names = [s.name for s in root.walk()]
        assert names == ["query", "rung"]
        payload = root.to_dict()
        assert payload["name"] == "query"
        assert payload["stages"]["filter"]["seconds"] == 0.1
        assert payload["children"][0]["name"] == "rung"
        assert payload["children"][0]["parent_id"] == root.span_id


_TREE = st.recursive(
    st.just([]), lambda child: st.lists(child, max_size=3), max_leaves=12
)


class TestSpanTimingProperty:
    @settings(max_examples=40, deadline=None)
    @given(shape=_TREE)
    def test_child_durations_sum_to_at_most_parent(self, shape):
        tracer = Tracer()

        def build(children):
            with tracer.trace("node") as span:
                for grandchildren in children:
                    build(grandchildren)
            return span

        root = build(shape)
        for span in root.walk():
            child_sum = sum(c.duration for c in span.children)
            assert child_sum <= span.duration + 1e-9


# ----------------------------------------------------------------------
# slow-query log
# ----------------------------------------------------------------------
def _entry(duration: float, method: str = "fr") -> SlowQueryEntry:
    return SlowQueryEntry(
        duration_seconds=duration,
        method=method,
        requested_method=method,
        qt=10,
        l=10.0,
        rho=0.5,
    )


class TestSlowQueryLog:
    def test_keeps_the_n_worst_in_slowest_first_order(self):
        log = SlowQueryLog(capacity=3)
        for d in (0.1, 0.5, 0.2, 0.9, 0.05, 0.3):
            log.offer(_entry(d))
        durations = [e.duration_seconds for e in log.entries()]
        assert durations == [0.9, 0.5, 0.3]
        assert log.offered == 6
        assert len(log) == 3

    def test_would_retain_matches_offer(self):
        log = SlowQueryLog(capacity=2)
        assert log.would_retain(0.0)  # not yet full
        log.offer(_entry(0.5))
        log.offer(_entry(0.6))
        assert not log.would_retain(0.5)  # ties lose
        assert log.would_retain(0.7)
        assert log.threshold_seconds == 0.5

    def test_capacity_zero_never_retains(self):
        log = SlowQueryLog(capacity=0)
        assert not log.offer(_entry(99.0))
        assert not log.would_retain(99.0)
        assert log.threshold_seconds == float("inf")

    def test_note_skipped_counts_offers(self):
        log = SlowQueryLog(capacity=1)
        log.note_skipped()
        assert log.offered == 1 and len(log) == 0

    def test_to_dict_and_replay_kwargs(self):
        log = SlowQueryLog(capacity=4)
        log.offer(_entry(0.25, method="pa"))
        payload = log.to_dict()
        assert payload["capacity"] == 4
        (entry,) = payload["entries"]
        assert entry["method"] == "pa"
        assert _entry(0.25, "pa").replay_kwargs() == {
            "method": "pa", "qt": 10, "l": 10.0, "rho": 0.5,
        }

    @settings(max_examples=30, deadline=None)
    @given(
        durations=st.lists(
            st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
            max_size=30,
        ),
        capacity=st.integers(min_value=0, max_value=8),
    )
    def test_retention_equals_sorted_tail(self, durations, capacity):
        log = SlowQueryLog(capacity=capacity)
        for d in durations:
            log.offer(_entry(d))
        kept = [e.duration_seconds for e in log.entries()]
        # multiset of the capacity largest (ties broken arbitrarily)
        expected = sorted(durations, reverse=True)[:capacity]
        assert sorted(kept, reverse=True) == pytest.approx(expected)


# ----------------------------------------------------------------------
# end-to-end: stage_seconds compatibility + exemplar replay
# ----------------------------------------------------------------------
def _populated():
    server = PDRServer(small_system_config(), expected_objects=200)
    populate_clustered(server, 120)
    return server


class TestStageSecondsCompatibility:
    def test_trace_totals_equal_extras_bit_for_bit(self):
        """FR hands the *same floats* to the trace and to stats.extra."""
        server = _populated()
        qt = server.tnow + 1
        for varrho in (0.8, 1.2, 2.0):
            with TELEMETRY.tracer.trace("capture") as outer:
                result = server.query("fr", qt=qt, varrho=varrho)
            (query_span,) = outer.children
            totals = query_span.stage_totals()
            for stage in ("filter", "fuse", "fetch", "sweep", "merge"):
                assert totals.get(stage, 0.0) == result.stats.extra.get(
                    f"{stage}_seconds", 0.0
                ), f"stage {stage} diverged at varrho={varrho}"

    def test_report_view_equals_trace_accumulation_on_seeded_workload(self):
        """The report's stage_seconds equal hand-accumulated extras exactly."""
        server = _populated()
        qt = server.tnow + 1
        accumulated = {
            "filter": 0.0,
            "fuse": 0.0,
            "fetch": 0.0,
            "sweep": 0.0,
            "merge": 0.0,
        }
        for varrho in (0.6, 0.9, 1.1, 1.4, 1.9, 2.5):
            result = server.query("fr", qt=qt, varrho=varrho)
            for stage in accumulated:
                accumulated[stage] += result.stats.extra.get(
                    f"{stage}_seconds", 0.0
                )
        view = server.reliability_report()["query_stage_seconds"]
        assert view == accumulated  # bit-for-bit: same floats, same order

    def test_disabled_telemetry_still_populates_the_report(self):
        TELEMETRY.disable()
        try:
            server = _populated()
            result = server.query("fr", qt=server.tnow + 1, varrho=1.2)
            report = server.reliability_report()
            assert report["queries_served"] == 1
            assert (
                report["query_stage_seconds"]["filter"]
                == result.stats.extra["filter_seconds"]
            )
            # and the registry saw nothing
            fam = TELEMETRY.registry.get("repro_query_seconds")
            assert all(child.count == 0 for _, child in fam.series())
        finally:
            TELEMETRY.enable()


class TestSlowQueryExemplars:
    def test_exemplars_replay_to_identical_answers(self):
        server = _populated()
        qt = server.tnow + 1
        originals = {}
        for method, varrho in (("fr", 1.2), ("pa", 1.5), ("dh-optimistic", 0.9)):
            result = server.query(method, qt=qt, varrho=varrho)
            originals[result.stats.method] = result
        entries = TELEMETRY.slow_queries.entries()
        assert len(entries) == 3
        for entry in entries:
            again = server.query(**entry.replay_kwargs())
            reference = originals[entry.method]
            assert again.regions.rects == reference.regions.rects
            assert again.area() == reference.area()
            assert entry.trace["name"] == "query"

    def test_queries_feed_the_metrics_registry(self):
        server = _populated()
        server.query("fr", qt=server.tnow + 1, varrho=1.2)
        assert TELEMETRY.registry.get("repro_query_total").labels(
            "fr", "ok"
        ).value == 1.0
        assert TELEMETRY.registry.get("repro_query_seconds").labels(
            "fr"
        ).count == 1


# ----------------------------------------------------------------------
# satellite: recover() resets per-query counters, bumps the generation
# ----------------------------------------------------------------------
class TestRecoveryGeneration:
    def test_recover_resets_query_counters_and_bumps_generation(self, tmp_path):
        state_dir = str(tmp_path / "state")
        server = PDRServer(
            small_system_config(),
            expected_objects=200,
            reliability=ReliabilityConfig(state_dir=state_dir, fsync=False),
        )
        populate_clustered(server, 60)
        server.checkpoint()
        server.query("fr", qt=server.tnow + 1, varrho=1.2)
        assert server.query_counters["served"] == 1
        assert server.recovery_generation == 0
        server.close()

        recovered = PDRServer.recover(state_dir)
        assert recovered.query_counters["served"] == 0
        assert sum(recovered.stage_seconds.values()) == 0.0
        assert recovered.recovery_generation == 1
        report = recovered.reliability_report()
        assert report["recovery_generation"] == 1
        assert report["queries_served"] == 0
        recovered.close()

        # the generation is durable: a second recovery keeps counting
        again = PDRServer.recover(state_dir)
        assert again.recovery_generation == 2
        again.close()
