"""TCP front door: wire protocol, server limits, drain, resilient client.

The contract under test is the serving tier's, not the query engine's:
frames survive the wire byte-exact, oversized/garbled input degrades into
structured errors without killing well-behaved connections, pipelining is
bounded, drain refuses new work while finishing old work, ``not_primary``
redirects re-route writes, and — the retry invariant — the ``retry_after``
a shed carries over the wire is *exactly* the token bucket's own refill
estimate, which the client then actually sleeps.
"""

from __future__ import annotations

import random
import socket
import threading
import time

import pytest

from tests.conftest import small_system_config
from repro import PDRServer
from repro.core.errors import (
    ProtocolError,
    RetriesExhaustedError,
)
from repro.reliability.admission import AdmissionConfig
from repro.reliability.faults import FaultInjector, VirtualClock
from repro.reliability.replication import ReplicationConfig, ReplicationGroup
from repro.reliability.validation import ReliabilityConfig
from repro.serving.client import ClientConfig, ResilientClient, WireError
from repro.serving.protocol import (
    decode_frame,
    encode_frame,
    read_frame_sync,
    write_frame_sync,
)
from repro.serving.server import ServerThread, ServingConfig

N_OBJECTS = 48


def _make_group(state_dir, replicas=1, admission=None, faults=None):
    primary = PDRServer(
        small_system_config(),
        expected_objects=N_OBJECTS,
        reliability=ReliabilityConfig(
            state_dir=str(state_dir), fsync=False, faults=faults
        ),
    )
    rng = random.Random(11)
    primary.report_batch([
        (oid, rng.uniform(2.0, 98.0), rng.uniform(2.0, 98.0),
         rng.uniform(-0.5, 0.5), rng.uniform(-0.5, 0.5))
        for oid in range(N_OBJECTS)
    ])
    primary.advance_to(1)
    return ReplicationGroup(
        primary,
        n_replicas=replicas,
        config=ReplicationConfig(staleness_bound=1_000_000),
        admission=admission,
    )


@pytest.fixture
def front_door(tmp_path):
    group = _make_group(tmp_path / "state")
    thread = ServerThread(group, ServingConfig()).start()
    try:
        yield thread, group
    finally:
        thread.stop()
        group.close()


def _raw_conn(address):
    sock = socket.create_connection(address, timeout=5.0)
    sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
    return sock


# ----------------------------------------------------------------------
# protocol layer
# ----------------------------------------------------------------------
def test_frame_roundtrip_is_byte_exact():
    message = {"op": "report", "oid": 3, "x": 1.5, "unicode": "Ω≈ç"}
    assert decode_frame(encode_frame(message)[4:]) == message


def test_decode_rejects_garbage_and_non_objects():
    with pytest.raises(ProtocolError):
        decode_frame(b"\xff\x00 not json")
    with pytest.raises(ProtocolError):
        decode_frame(b"[1, 2, 3]")  # a frame must be a JSON object


def test_encode_enforces_max_frame():
    with pytest.raises(ProtocolError) as excinfo:
        encode_frame({"blob": "x" * 4096}, max_frame=1024)
    assert excinfo.value.code == "frame_too_large"


def test_sync_read_detects_truncation_and_clean_eof():
    a, b = socket.socketpair()
    try:
        write_frame_sync(a, {"op": "health"})
        assert read_frame_sync(b) == {"op": "health"}
        # a frame cut mid-body must be a ProtocolError, not a misparse
        data = encode_frame({"op": "status"})
        a.sendall(data[: len(data) // 2])
        a.close()
        with pytest.raises(ProtocolError):
            read_frame_sync(b)
    finally:
        b.close()
    # clean EOF exactly at a frame boundary is None (not an error)
    c, d = socket.socketpair()
    c.close()
    assert read_frame_sync(d) is None
    d.close()


# ----------------------------------------------------------------------
# server ops and limits
# ----------------------------------------------------------------------
def test_basic_ops_over_the_wire(front_door):
    thread, group = front_door
    with ResilientClient([thread.address]) as client:
        health = client.health()
        assert health["live"] and health["ready"]
        assert health["role"] == "primary"

        before = client.max_acked_lsn
        frame = client.report(1, 50.0, 50.0, 0.1, 0.1)
        assert frame["accepted"] and client.max_acked_lsn > before

        batch = client.report_batch(
            [(2, 40.0, 40.0, 0.0, 0.0), (3, 60.0, 60.0, 0.0, 0.0)]
        )
        assert batch["accepted"] == 2 and batch["rejected"] == 0

        assert client.retire(2)["retired"] is True

        t_before = client.health()["tnow"]
        assert client.advance(to=t_before + 1)["tnow"] == t_before + 1
        assert client.status()["ok"] is True

        for method in ("pa", "fr"):
            answer = client.query(method, qt_offset=1, varrho=2.0,
                                  max_regions=4)
            assert answer["method"] == method
            assert answer["n_regions"] >= len(answer["regions"])
            assert len(answer["regions"]) <= 4
            assert answer["area"] >= 0.0


def test_malformed_and_unknown_requests_are_bad_request(front_door):
    thread, _group = front_door
    config = ClientConfig(max_attempts=2)
    with ResilientClient([thread.address], config=config) as client:
        with pytest.raises(WireError) as excinfo:
            client.request({"op": "no_such_op"})
        assert excinfo.value.code == "bad_request"
        with pytest.raises(WireError) as excinfo:
            client.request({"op": "report", "oid": 1})  # missing coordinates
        assert excinfo.value.code == "bad_request"
        # the connection survived both rejections
        assert client.health()["live"]


def test_oversized_frame_gets_error_but_connection_survives(tmp_path):
    group = _make_group(tmp_path / "state")
    thread = ServerThread(group, ServingConfig(max_frame=2048)).start()
    try:
        sock = _raw_conn(thread.address)
        try:
            # hand-build an announced length over the cap; the body must
            # still be drained so the next frame parses
            big = encode_frame({"op": "report", "pad": "y" * 4096})
            sock.sendall(big)
            error = read_frame_sync(sock, max_frame=2048)
            assert error["error"] == "frame_too_large"
            write_frame_sync(sock, {"op": "health"}, max_frame=2048)
            assert read_frame_sync(sock, max_frame=2048)["ok"] is True
        finally:
            sock.close()
    finally:
        thread.stop()
        group.close()


def test_pipelining_beyond_max_inflight_is_refused(tmp_path):
    group = _make_group(tmp_path / "state")
    thread = ServerThread(group, ServingConfig(max_inflight=1, read_workers=1)).start()
    try:
        # park the one reader thread so the first status request stays in
        # flight while the second arrives
        gate = thread.server._read_executor.submit(time.sleep, 0.4)
        sock = _raw_conn(thread.address)
        try:
            write_frame_sync(sock, {"op": "status", "id": 1})
            write_frame_sync(sock, {"op": "status", "id": 2})
            first = read_frame_sync(sock)
            assert first["error"] == "too_many_inflight"
            assert first["retry_after"] > 0.0
            assert first["id"] == 2  # the overflow request was refused
            second = read_frame_sync(sock)
            assert second["ok"] is True and second["id"] == 1
        finally:
            sock.close()
            gate.result()
    finally:
        thread.stop()
        group.close()


def test_drain_finishes_inflight_refuses_new_then_closes(tmp_path):
    group = _make_group(tmp_path / "state")
    thread = ServerThread(group, ServingConfig(drain_deadline=5.0)).start()
    try:
        gate = thread.server._executor.submit(time.sleep, 0.5)
        sock = _raw_conn(thread.address)
        write_frame_sync(sock, {"op": "report", "id": "w", "oid": 7,
                                "x": 30.0, "y": 30.0, "vx": 0.0, "vy": 0.0})
        # wait until the server actually holds the report in flight, so
        # the drain below must finish it rather than refuse it
        deadline = time.time() + 2.0
        while not thread.server._tasks and time.time() < deadline:
            time.sleep(0.005)
        assert thread.server._tasks
        drainer = threading.Thread(target=thread.drain)
        drainer.start()
        while not thread.server.draining and time.time() < deadline:
            time.sleep(0.005)
        assert thread.server.draining

        # liveness answers inline; readiness flipped the moment drain began
        write_frame_sync(sock, {"op": "health", "id": "h"})
        # new work is refused with the structured error + retry hint
        write_frame_sync(sock, {"op": "status", "id": "s"})

        got = {}
        for _ in range(3):
            frame = read_frame_sync(sock)
            got[frame.get("id")] = frame
        assert got["h"]["live"] is True and got["h"]["ready"] is False
        assert got["s"]["error"] == "draining"
        assert got["s"]["retry_after"] > 0.0
        assert got["w"]["ok"] is True  # in-flight write finished under drain
        gate.result()
        drainer.join(timeout=10.0)
        assert not drainer.is_alive()
        # once drained the connection is gone ...
        try:
            assert read_frame_sync(sock) is None
        except (ProtocolError, OSError):
            pass  # an abortive close is also "gone"
        sock.close()
        # ... and the port no longer accepts
        with pytest.raises(OSError):
            socket.create_connection(thread.address, timeout=0.5).close()
    finally:
        thread.stop()
        group.close()


def test_drain_is_idempotent_and_observed(front_door):
    thread, _group = front_door
    with ResilientClient([thread.address]) as client:
        assert client.drain()["draining"] is True
    thread.drain()  # concurrent/second drain must not error
    assert thread.server.draining


# ----------------------------------------------------------------------
# redirects and failover visibility
# ----------------------------------------------------------------------
def test_not_primary_redirect_is_followed(front_door):
    thread, _group = front_door
    fenced = PDRServer(small_system_config(), expected_objects=8)
    fenced.demote()
    fenced_thread = ServerThread(
        fenced, ServingConfig(primary_address=thread.address)
    ).start()
    try:
        config = ClientConfig(max_attempts=4, seed=3)
        with ResilientClient([fenced_thread.address], config=config) as client:
            frame = client.report(5, 55.0, 45.0, 0.0, 0.0)
            assert frame["accepted"] is True
            assert client.stats["redirects"] >= 1
            assert tuple(thread.address) in client.endpoints
    finally:
        fenced_thread.stop()


def test_client_sees_epoch_change_across_failover(tmp_path):
    group = _make_group(tmp_path / "state", replicas=2)
    thread = ServerThread(group, ServingConfig()).start()
    try:
        with ResilientClient([thread.address], ClientConfig(seed=5)) as client:
            client.report(9, 20.0, 20.0, 0.0, 0.0)
            epoch_before = client.epoch

            def _failover():
                group.mark_primary_dead()
                group.failover()

            thread.call(_failover)
            frame = client.report(9, 21.0, 20.0, 0.0, 0.0)
            assert frame["accepted"] is True
            assert client.epoch > epoch_before
            wal = thread.call(lambda: group.primary.wal_lsn or 0)
            assert client.max_acked_lsn <= wal  # no acked write lost
    finally:
        thread.stop()
        group.close()


# ----------------------------------------------------------------------
# the retry_after invariant, end to end
# ----------------------------------------------------------------------
def test_shed_retry_after_on_the_wire_equals_the_token_bucket(tmp_path):
    # the group's clock is virtual (FaultInjector default), so the bucket
    # refills only when *we* say: the wire value is exactly reproducible
    faults = FaultInjector()
    group = _make_group(
        tmp_path / "state",
        admission=AdmissionConfig(rate=1.0, burst=4.0, degrade=True),
        faults=faults,
    )
    thread = ServerThread(group, ServingConfig()).start()
    try:
        sock = _raw_conn(thread.address)
        try:
            # pa costs 2 tokens: two queries drain the burst of 4 to zero
            for _ in range(2):
                write_frame_sync(sock, {"op": "query", "method": "pa",
                                        "varrho": 2.0, "max_regions": 0})
                assert read_frame_sync(sock)["ok"] is True
            write_frame_sync(sock, {"op": "query", "method": "pa",
                                    "varrho": 2.0, "max_regions": 0})
            shed = read_frame_sync(sock)
            assert shed["error"] == "shed"
            # the cheapest rung below pa costs 1 token; at rate 1/s on a
            # frozen clock the bucket's own estimate is exactly 1.0s — and
            # that exact float must be what crossed the wire
            expected = thread.call(
                lambda: group.admission.bucket.seconds_until(1.0)
            )
            assert expected == 1.0
            assert shed["retry_after"] == expected
        finally:
            sock.close()

        # ... and the client sleeps what the server announced
        vclock = VirtualClock()
        config = ClientConfig(max_attempts=2, retry_after_cap=5.0, seed=1)
        with ResilientClient([thread.address], config=config,
                             clock=vclock) as client:
            with pytest.raises(RetriesExhaustedError):
                client.query("pa", varrho=2.0, max_regions=0)
            assert client.retry_after_honored == [1.0, 1.0]
            assert client.sheds_missing_retry_after == 0
            assert vclock.now() >= 2.0  # both hints actually slept
    finally:
        thread.stop()
        group.close()


# ----------------------------------------------------------------------
# satellites: build info metric, interrupt exit code
# ----------------------------------------------------------------------
def test_build_info_gauge_is_always_exported():
    from repro.telemetry import TELEMETRY, render_prometheus
    from repro.telemetry.exporters import REQUIRED_FAMILIES

    assert "repro_build_info" in REQUIRED_FAMILIES
    snapshot = TELEMETRY.registry.snapshot()
    families = {f["name"]: f for f in snapshot["families"]}
    info = families["repro_build_info"]
    (sample,) = info["series"]
    assert sample["value"] == 1.0
    assert set(sample["labels"]) == {"version", "python", "git_sha"}
    assert sample["labels"]["python"].count(".") == 2
    assert "repro_build_info{" in render_prometheus(snapshot)


def test_keyboard_interrupt_maps_to_130(monkeypatch):
    from repro import cli

    def _interrupted(args):
        raise KeyboardInterrupt

    monkeypatch.setattr(cli, "_cmd_chaos", _interrupted)
    assert cli.main(["chaos"]) == cli.EXIT_INTERRUPTED == 130
