"""Shared fixtures for the PDR reproduction test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro import PDRServer, SystemConfig
from repro.core.geometry import Rect


@pytest.fixture
def unit_domain() -> Rect:
    return Rect(0.0, 0.0, 100.0, 100.0)


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(20070401)


def small_system_config() -> SystemConfig:
    """A compact configuration used by integration tests.

    Domain 100x100, U=6, W=6 (H=12), l=10, m=20 (cell edge 5 = l/2),
    g=5, k=4, m_d=128 — small enough that every structure updates in
    microseconds but every code path (multi-tile squares, ring buffer,
    filter radii > 1) is exercised.
    """
    return SystemConfig(
        domain=Rect(0.0, 0.0, 100.0, 100.0),
        max_update_interval=6,
        prediction_window=6,
        l=10.0,
        histogram_cells=20,
        polynomial_grid=5,
        polynomial_degree=4,
        evaluation_grid=128,
    )


@pytest.fixture
def small_config() -> SystemConfig:
    return small_system_config()


@pytest.fixture
def small_server(small_config) -> PDRServer:
    return PDRServer(small_config, expected_objects=200)


def populate_clustered(server: PDRServer, n: int, seed: int = 1) -> None:
    """Half the objects in two tight clusters, half uniform background."""
    gen = np.random.default_rng(seed)
    domain = server.config.domain
    oid = 0
    for _ in range(n // 4):
        x, y = gen.normal([30.0, 30.0], 3.0, size=2)
        server.report(oid, float(np.clip(x, 1, 99)), float(np.clip(y, 1, 99)),
                      float(gen.uniform(-0.2, 0.2)), float(gen.uniform(-0.2, 0.2)))
        oid += 1
    for _ in range(n // 4):
        x, y = gen.normal([70.0, 65.0], 4.0, size=2)
        server.report(oid, float(np.clip(x, 1, 99)), float(np.clip(y, 1, 99)),
                      float(gen.uniform(-0.2, 0.2)), float(gen.uniform(-0.2, 0.2)))
        oid += 1
    while oid < n:
        x = float(gen.uniform(domain.x1 + 1, domain.x2 - 1))
        y = float(gen.uniform(domain.y1 + 1, domain.y2 - 1))
        server.report(oid, x, y, float(gen.uniform(-0.3, 0.3)),
                      float(gen.uniform(-0.3, 0.3)))
        oid += 1


@pytest.fixture
def populated_server(small_server) -> PDRServer:
    populate_clustered(small_server, 120)
    return small_server
