"""Admission control: token bucket, degradation ladder, shedding, breakers.

The overload half of the replicated-serving acceptance criteria: under a
synthetic load of 4x the group's capacity (driven on the injector's
virtual clock, so "seconds" are exact), the admission controller must
keep p99 query latency under the configured deadline by degrading
requests down the ``fr -> pa -> dh-optimistic`` ladder and shedding the
remainder with a computed ``retry_after`` — and the test must show the
same load *without* admission would blow the deadline.
"""

from __future__ import annotations

import numpy as np
import pytest

from tests.conftest import populate_clustered, small_system_config
from tests.test_recovery import durable_config
from repro import PDRServer
from repro.core.errors import AdmissionRejectedError, InvalidParameterError, QueryError
from repro.methods.monitor import PDRMonitor
from repro.reliability import (
    AdmissionConfig,
    AdmissionController,
    CircuitBreaker,
    FaultInjector,
    ReplicationConfig,
    ReplicationGroup,
    TokenBucket,
    VirtualClock,
)


class TestTokenBucket:
    def test_starts_full_and_refills_to_burst(self):
        clock = VirtualClock()
        bucket = TokenBucket(rate=2.0, burst=10.0, clock=clock)
        assert bucket.try_take(10.0)
        assert not bucket.try_take(0.5)
        clock.sleep(1.0)
        assert bucket.try_take(2.0)  # refilled 2 tokens
        clock.sleep(100.0)
        assert bucket.tokens <= 0.0 or True
        bucket._refill()
        assert bucket.tokens == 10.0  # capped at burst

    def test_seconds_until_is_deficit_over_rate(self):
        clock = VirtualClock()
        bucket = TokenBucket(rate=4.0, burst=8.0, clock=clock)
        assert bucket.seconds_until(8.0) == 0.0
        bucket.try_take(8.0)
        assert bucket.seconds_until(6.0) == pytest.approx(1.5)

    def test_rejects_bad_parameters(self):
        with pytest.raises(InvalidParameterError):
            TokenBucket(rate=0.0, burst=1.0, clock=VirtualClock())
        with pytest.raises(InvalidParameterError):
            TokenBucket(rate=1.0, burst=0.0, clock=VirtualClock())


class TestCircuitBreaker:
    def test_opens_after_threshold_and_probes_half_open(self):
        clock = VirtualClock()
        breaker = CircuitBreaker(clock, threshold=3, probation_seconds=5.0)
        assert breaker.allow()
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.allow()  # two failures: still closed
        breaker.record_failure()
        assert breaker.state == "open"
        assert not breaker.allow()
        clock.sleep(5.1)
        assert breaker.allow()  # probation over: half-open probe
        assert breaker.state == "half-open"
        breaker.record_success()
        assert breaker.state == "closed"

    def test_failed_probe_reopens_immediately(self):
        clock = VirtualClock()
        breaker = CircuitBreaker(clock, threshold=3, probation_seconds=5.0)
        for _ in range(3):
            breaker.record_failure()
        clock.sleep(5.1)
        assert breaker.allow()
        breaker.record_failure()  # one failed probe suffices
        assert breaker.state == "open"
        assert not breaker.allow()

    def test_success_resets_the_consecutive_count(self):
        clock = VirtualClock()
        breaker = CircuitBreaker(clock, threshold=2, probation_seconds=1.0)
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        assert breaker.state == "closed"  # never two in a row


class TestAdmissionController:
    def test_degrades_down_the_ladder_when_tokens_are_short(self):
        clock = VirtualClock()
        ctl = AdmissionController(AdmissionConfig(rate=1.0, burst=2.0), clock)
        assert ctl.admit("fr") == ("pa", True)  # fr costs 4, only 2 tokens
        with pytest.raises(AdmissionRejectedError) as exc_info:
            ctl.admit("fr")  # bucket empty: even dh-optimistic (1) is short
        assert exc_info.value.retry_after == pytest.approx(1.0)  # 1 token / 1 per s
        assert ctl.counters["requested"] == 2
        assert ctl.counters["admitted"] == 1
        assert ctl.counters["degraded"] == 1
        assert ctl.counters["rejected_rate"] == 1

    def test_full_bucket_admits_the_requested_method(self):
        ctl = AdmissionController(AdmissionConfig(rate=10.0, burst=100.0), VirtualClock())
        assert ctl.admit("fr") == ("fr", False)
        assert ctl.admit("pa") == ("pa", False)

    def test_degrade_false_sheds_instead_of_downgrading(self):
        ctl = AdmissionController(
            AdmissionConfig(rate=1.0, burst=2.0, degrade=False), VirtualClock()
        )
        with pytest.raises(AdmissionRejectedError):
            ctl.admit("fr")
        assert ctl.counters["degraded"] == 0

    def test_non_ladder_methods_never_degrade(self):
        ctl = AdmissionController(AdmissionConfig(rate=1.0, burst=2.0), VirtualClock())
        with pytest.raises(AdmissionRejectedError):
            ctl.admit("bruteforce")  # costs 8; no cheaper rung for it

    def test_unpriced_method_defaults_to_one_token(self):
        ctl = AdmissionController(AdmissionConfig(rate=1.0, burst=2.0), VirtualClock())
        assert ctl.cost_of("mystery") == 1.0

    def test_concurrency_cap_rejects_with_retry_after(self):
        ctl = AdmissionController(
            AdmissionConfig(rate=10.0, burst=20.0, max_concurrent=1), VirtualClock()
        )
        with ctl.slot():
            with pytest.raises(AdmissionRejectedError):
                ctl.admit("pa")
        assert ctl.counters["rejected_concurrency"] == 1
        assert ctl.in_flight == 0  # the slot was released
        assert ctl.admit("pa") == ("pa", False)

    def test_report_shape(self):
        ctl = AdmissionController(AdmissionConfig(rate=1.0, burst=1.0), VirtualClock())
        ctl.admit("dh-optimistic")
        ctl.breaker("replica-0").record_failure()
        report = ctl.report()
        assert report["requested"] == 1
        assert report["admitted"] == 1
        assert report["tokens"] == 0.0
        assert report["breakers"] == {"replica-0": "closed"}


# ----------------------------------------------------------------------
# integration with the replication group
# ----------------------------------------------------------------------
N_OBJECTS = 200


def make_serving_group(tmp_path, admission=None, n_replicas=1, faults=None):
    faults = faults or FaultInjector()
    rc = durable_config(tmp_path, faults=faults, interval=50)
    primary = PDRServer(small_system_config(), expected_objects=N_OBJECTS, reliability=rc)
    group = ReplicationGroup(
        primary,
        n_replicas=0,
        config=ReplicationConfig(staleness_bound=0),
        admission=admission,
    )
    populate_clustered(primary, N_OBJECTS, seed=11)
    group.pump()
    for _ in range(n_replicas):
        group.add_replica()
    return group, faults


class TestBreakerIntegration:
    def test_failing_replica_is_ejected_then_readmitted(self, tmp_path):
        group, faults = make_serving_group(tmp_path, n_replicas=1)
        replica = group.replicas[0]
        healthy_query = replica.server.query
        calls = []

        def sick_query(*args, **kwargs):
            calls.append(1)
            raise QueryError("backend wedged")

        replica.server.query = sick_query
        for _ in range(5):
            result = group.query("pa", qt=group.tnow, varrho=2.0)
            assert result.served_by == "primary"  # fallback kept serving
        # threshold (3) failures opened the breaker: attempts stop
        assert len(calls) == 3
        assert group.status()["replicas"][0]["breaker"] == "open"

        replica.server.query = healthy_query
        faults.clock.sleep(group.replication.breaker_probation_seconds + 0.1)
        result = group.query("pa", qt=group.tnow, varrho=2.0)
        assert result.served_by == "replica-0"  # half-open probe succeeded
        assert group.status()["replicas"][0]["breaker"] == "closed"
        group.close()

    def test_all_backends_broken_raises_query_error(self, tmp_path):
        group, _ = make_serving_group(tmp_path, n_replicas=0)

        def sick_query(*args, **kwargs):
            raise QueryError("primary wedged")

        group.primary.query = sick_query
        for _ in range(3):
            with pytest.raises(QueryError, match="wedged"):
                group.query("pa", qt=group.tnow, varrho=2.0)
        with pytest.raises(QueryError, match="circuit-broken"):
            group.query("pa", qt=group.tnow, varrho=2.0)
        group.close()


class TestMonitorShedding:
    def test_monitor_records_shed_events_with_retry_after(self, tmp_path):
        admission = AdmissionConfig(rate=1.0, burst=1.0, degrade=False)
        group, _ = make_serving_group(tmp_path, admission=admission)
        monitor = PDRMonitor(group, offset=2, method="pa", varrho=2.0)
        event = monitor.poll()  # pa costs 2, bucket holds 1: shed
        assert event.status == "shed"
        assert event.result is None
        assert event.retry_after == pytest.approx(1.0)
        assert monitor.shed_events() == [event]
        assert monitor.changed_events() == []  # unknown answer is not change
        group.close()


class TestOverload:
    """The 4x-capacity acceptance scenario, on virtual time."""

    DEADLINE = 1.0  # the per-query latency SLO (virtual seconds)

    def test_p99_latency_stays_under_deadline_by_degrading_and_shedding(self, tmp_path):
        faults = FaultInjector()
        # price evaluation in virtual time: FR refinement dominates, PA is
        # cheaper, the histogram bounds are nearly free
        # (priced per fused band now that refinement is band-batched)
        faults.inject_delay("fr.refine", 0.012)
        faults.inject_delay("pa.query", 0.02)
        group, _ = make_serving_group(tmp_path, n_replicas=0, faults=faults)
        clock = faults.clock
        qt = group.tnow + 2

        # calibrate: one warm FR evaluation tells us the service time
        t0 = clock.now()
        group.query("fr", qt=qt, varrho=2.0)
        fr_service = clock.now() - t0
        assert fr_service > 0.05, "FR must be meaningfully expensive here"

        # offered load: one FR request every fr_service/4 seconds = 4x what
        # a serial server can evaluate.  The bucket is sized to admit about
        # half a second of evaluation work per second of wall clock.
        interarrival = fr_service / 4.0
        rate = 2.0 / fr_service  # tokens/s; an admitted fr costs 4 tokens
        group.admission = AdmissionController(
            AdmissionConfig(rate=rate, burst=8.0), clock
        )

        n_requests = 150
        latencies = []
        shed = 0
        start = clock.now()
        for i in range(n_requests):
            arrival = start + i * interarrival
            if clock.now() < arrival:
                clock.sleep(arrival - clock.now())
            # the server is serial: a request that arrives while it is busy
            # waits, and evaluation itself advances the virtual clock — so
            # now() - arrival is the response time (wait + service; a shed
            # request is answered at the door, paying only the wait)
            try:
                group.query("fr", qt=qt, varrho=2.0)
            except AdmissionRejectedError as exc:
                shed += 1
                assert exc.retry_after >= 0.0
            latencies.append(clock.now() - arrival)

        report = group.admission.report()
        assert report["requested"] == n_requests
        assert shed == report["rejected"] > 0  # load really was shed
        assert report["degraded"] > 0  # and degraded before shedding
        assert report["admitted"] + report["rejected"] == n_requests

        p99 = float(np.percentile(latencies, 99))
        assert p99 < self.DEADLINE, (
            f"p99 latency {p99:.3f}s breached the {self.DEADLINE}s deadline "
            f"(shed={shed}, degraded={report['degraded']})"
        )

        # the counterfactual: admitting every FR request at 4x capacity
        # piles up 3 service times of backlog per arrival — far past the
        # deadline well before the run ends
        naive_backlog = n_requests * (fr_service - interarrival)
        assert naive_backlog > 10 * self.DEADLINE
        group.close()
