"""The load harness: mixes, arrival schedules, verdicts, failover runs.

Short self-hosted runs only — the point is that the harness measures and
judges correctly, not that this box is fast.  The expensive properties
(SLO math, zero-acked-write-loss accounting, flash-crowd ramp) are
checked on synthetic results where they are exact.
"""

from __future__ import annotations

import json
import shutil
import tempfile

import pytest

from repro.core.errors import InvalidParameterError
from repro.serving.loadtest import (
    LoadTestConfig,
    LoadTestResult,
    MIXES,
    _open_loop_arrivals,
    build_serving_group,
    run_loadtest,
)
from repro.serving.server import ServerThread, ServingConfig


@pytest.fixture(scope="module")
def hosted():
    """One small serving group shared by the non-failover run tests."""
    workdir = tempfile.mkdtemp(prefix="loadtest-")
    group = build_serving_group(workdir + "/state", objects=32, replicas=1)
    thread = ServerThread(group, ServingConfig()).start()
    try:
        yield thread
    finally:
        thread.stop()
        group.close()
        shutil.rmtree(workdir, ignore_errors=True)


# ----------------------------------------------------------------------
# configuration and schedule logic (no sockets)
# ----------------------------------------------------------------------
def test_config_validation_rejects_bad_scenarios():
    with pytest.raises(InvalidParameterError):
        LoadTestConfig(mix="write-only").validate()
    with pytest.raises(InvalidParameterError):
        LoadTestConfig(mode="half-open").validate()
    with pytest.raises(InvalidParameterError):
        LoadTestConfig(duration=0.0).validate()
    for mix in MIXES:
        LoadTestConfig(mix=mix).validate()


def test_open_loop_arrivals_are_deterministic_with_flash_ramp():
    base = LoadTestConfig(mix="report-heavy", mode="open", rate=30.0,
                          duration=3.0)
    flash = LoadTestConfig(mix="flash-crowd", mode="open", rate=30.0,
                           duration=3.0, flash_factor=6.0)
    plain = _open_loop_arrivals(base)
    crowd = _open_loop_arrivals(flash)
    assert plain == _open_loop_arrivals(base)  # pure function of config
    assert crowd == _open_loop_arrivals(flash)
    # the ramp adds arrivals only inside the middle third
    third = base.duration / 3.0

    def _in_middle(schedule):
        return sum(1 for t in schedule if third <= t < 2 * third)

    assert _in_middle(crowd) > _in_middle(plain) * 4
    assert len([t for t in crowd if t < third]) == len(
        [t for t in plain if t < third]
    )
    assert all(b > a for a, b in zip(crowd, crowd[1:]))  # monotone


def test_slo_verdict_math_on_synthetic_results():
    result = LoadTestResult(
        config=LoadTestConfig(report_slo_p99_ms=10.0, query_slo_p99_ms=10.0),
        elapsed=1.0,
        latencies_ms={"report": [5.0, 50.0], "query": [2.0]},
        ops=3,
        max_acked_lsn=7,
        final_wal_lsn=5,  # two acked writes beyond the durable position
    )
    verdicts = result.slo_verdicts()
    assert verdicts["report_p99"] is False  # p99 = 50ms > 10ms
    assert verdicts["query_p99"] is True
    assert result.acked_write_loss == 2
    assert verdicts["zero_acked_write_loss"] is False
    assert result.ok is False
    # a missing retry_after is a failure on its own
    healthy = LoadTestResult(config=LoadTestConfig(), elapsed=1.0, ops=1,
                             latencies_ms={"report": [1.0]})
    assert healthy.ok is True
    healthy.sheds_missing_retry_after = 1
    assert healthy.slo_verdicts()["retry_after_always_present"] is False
    assert healthy.ok is False


# ----------------------------------------------------------------------
# live runs (short)
# ----------------------------------------------------------------------
def test_closed_loop_run_passes_and_serializes(hosted):
    config = LoadTestConfig(mix="report-heavy", mode="closed", duration=1.2,
                            concurrency=2, seed=3, objects=32,
                            report_slo_p99_ms=2000.0,
                            query_slo_p99_ms=5000.0)
    result = run_loadtest([hosted.address], config=config)
    assert result.ops > 0 and result.failed_ops == 0
    assert result.acked_reports > 0
    assert result.acked_write_loss == 0
    assert result.final_wal_lsn >= result.max_acked_lsn > 0
    assert result.ok, result.slo_verdicts()
    payload = json.loads(json.dumps(result.to_dict()))
    assert payload["ok"] is True
    assert payload["latency_ms"]["report"]["count"] > 0
    assert "verdict: PASS" in result.summary()


def test_query_heavy_sheds_carry_retry_after():
    """Overloaded query-heavy traffic sheds, and every shed names a wait.

    The reader pool made query-heavy load genuinely concurrent, so the
    admission bucket is now hit from several threads at once — the shed
    path must still attach the bucket's computed ``retry_after`` to every
    rejection (the client counts any shed without one).
    """
    workdir = tempfile.mkdtemp(prefix="loadtest-shed-")
    group = build_serving_group(workdir + "/state", objects=32, replicas=1,
                                admission_rate=3.0, admission_burst=3.0)
    thread = ServerThread(group, ServingConfig()).start()
    try:
        config = LoadTestConfig(mix="query-heavy", mode="closed",
                                duration=1.5, concurrency=3, seed=13,
                                objects=32, max_failure_ratio=1.0,
                                report_slo_p99_ms=20000.0,
                                query_slo_p99_ms=20000.0)
        result = run_loadtest([thread.address], config=config)
        assert result.ops > 0
        assert result.sheds_honored > 0
        assert result.sheds_missing_retry_after == 0
        assert result.slo_verdicts()["retry_after_always_present"] is True
    finally:
        thread.stop()
        group.close()
        shutil.rmtree(workdir, ignore_errors=True)


def test_open_loop_run_executes_the_whole_schedule(hosted):
    config = LoadTestConfig(mix="query-heavy", mode="open", duration=1.0,
                            rate=30.0, concurrency=2, seed=5, objects=32,
                            report_slo_p99_ms=5000.0,
                            query_slo_p99_ms=10000.0)
    result = run_loadtest([hosted.address], config=config)
    # open loop: every scheduled arrival becomes exactly one op
    assert result.ops == len(_open_loop_arrivals(config))
    assert result.failed_ops == 0
    assert result.acked_write_loss == 0
    assert result.percentiles("query")["count"] > 0


def test_failover_under_load_loses_no_acked_write(tmp_path):
    group = build_serving_group(str(tmp_path / "state"), objects=32,
                                replicas=2)
    thread = ServerThread(group, ServingConfig()).start()
    try:
        def _kill_primary():
            def _do():
                group.mark_primary_dead()
                group.failover()
            thread.call(_do)

        config = LoadTestConfig(mix="report-heavy", mode="closed",
                                duration=2.4, concurrency=2, seed=11,
                                objects=32, kill_primary_at=0.8,
                                report_slo_p99_ms=5000.0,
                                query_slo_p99_ms=10000.0)
        result = run_loadtest([thread.address], config=config,
                              kill_primary=_kill_primary)
        assert result.epoch_changes >= 1
        assert result.final_epoch >= 2
        assert result.acked_write_loss == 0, (
            f"acked writes lost across failover: max acked "
            f"{result.max_acked_lsn} > WAL {result.final_wal_lsn}"
        )
        assert result.ok, result.slo_verdicts()
    finally:
        thread.stop()
        group.close()
