"""Socket-fault injection: the chaos proxy and network chaos campaigns.

Each proxy fault is first exercised in isolation through a real server
and the resilient client — the client must ride it out and the armed
fault must be consumed exactly once.  Then short seeded campaigns run
the whole schedule over TCP and every oracle (including the two network
invariants: no acked write lost to a reset, every shed carries
``retry_after``) must stay green.
"""

from __future__ import annotations

import time

import pytest

from tests.conftest import small_system_config
from repro import PDRServer
from repro.reliability.chaos import ChaosConfig, ChaosScheduler, NET_DISRUPTIONS
from repro.reliability.replication import ReplicationConfig, ReplicationGroup
from repro.reliability.validation import ReliabilityConfig
from repro.serving.client import ClientConfig, ResilientClient
from repro.serving.netchaos import ChaosProxy
from repro.serving.server import ServerThread, ServingConfig


@pytest.fixture
def proxied(tmp_path):
    """server <- proxy <- client, with everything needed to arm faults."""
    primary = PDRServer(
        small_system_config(),
        expected_objects=16,
        reliability=ReliabilityConfig(state_dir=str(tmp_path / "state"),
                                      fsync=False),
    )
    primary.report_batch([
        (oid, 20.0 + oid, 30.0 + oid, 0.1, 0.1) for oid in range(16)
    ])
    group = ReplicationGroup(
        primary, n_replicas=1,
        config=ReplicationConfig(staleness_bound=1_000_000),
    )
    thread = ServerThread(
        group, ServingConfig(read_timeout=0.5, write_timeout=2.0)
    ).start()
    proxy = ChaosProxy(thread.address)
    client = ResilientClient(
        [proxy.address],
        ClientConfig(connect_timeout=0.5, request_timeout=1.5,
                     max_attempts=6, backoff_base=0.01, backoff_cap=0.1,
                     seed=13, breaker_threshold=10),
    )
    try:
        yield client, proxy, thread, group
    finally:
        client.close()
        proxy.close()
        thread.stop()
        group.close()


def test_passthrough_forwards_both_ways(proxied):
    client, proxy, _thread, _group = proxied
    assert client.health()["ok"] is True
    assert client.report(1, 25.0, 35.0, 0.0, 0.0)["accepted"] is True
    assert proxy.stats["connections"] >= 1
    assert proxy.stats["resets"] == 0


def test_connection_reset_does_not_lose_the_acked_write(proxied):
    client, proxy, thread, group = proxied
    client.health()  # pin a healthy connection first
    proxy.reset_next()
    client.reconnect()  # faults are consumed per-connection
    frame = client.report(2, 40.0, 40.0, 0.0, 0.0)
    # the client retried through the RST and got the (re-issued) ack
    assert frame["accepted"] is True
    assert proxy.stats["resets"] == 1
    assert client.stats["connection_errors"] >= 1
    # the oracle the chaos campaign runs after every disruption:
    wal = thread.call(lambda: group.primary.wal_lsn or 0)
    assert client.max_acked_lsn <= wal


def test_truncated_response_is_detected_and_retried(proxied):
    client, proxy, _thread, _group = proxied
    proxy.truncate_next()
    client.reconnect()
    assert client.health()["ok"] is True  # a retry rode out the cut frame
    assert proxy.stats["truncations"] == 1
    assert client.stats["connection_errors"] >= 1


def test_slowloris_request_is_cut_by_the_read_timeout(proxied):
    client, proxy, _thread, _group = proxied
    # dribbling 2 bytes every 0.2s starves the server's 0.5s read
    # timeout long before a whole frame arrives
    proxy.slowloris_next(delay=0.2)
    client.reconnect()
    t0 = time.monotonic()
    assert client.report(3, 50.0, 50.0, 0.0, 0.0)["accepted"] is True
    assert proxy.stats["slowloris"] == 1
    assert time.monotonic() - t0 >= 0.3  # the first attempt really stalled


def test_accept_stall_delays_but_does_not_fail(proxied):
    client, proxy, _thread, _group = proxied
    proxy.stall_accept(0.4)
    client.reconnect()
    t0 = time.monotonic()
    assert client.health()["ok"] is True
    assert time.monotonic() - t0 >= 0.25
    assert proxy.stats["stalls"] == 1


# ----------------------------------------------------------------------
# seeded campaigns over the wire
# ----------------------------------------------------------------------
def test_network_schedule_forces_socket_faults():
    config = ChaosConfig(seed=1, events=60, network=True)
    scheduler = ChaosScheduler(config, workdir="/tmp/unused-netchaos-sched")
    schedule = scheduler.build_schedule()
    net_events = [e for e in schedule if e[0] in NET_DISRUPTIONS]
    assert len(net_events) >= config.min_net_disruptions
    assert schedule == scheduler.build_schedule()  # seed-deterministic


@pytest.mark.parametrize("seed", [3, 5])
def test_network_campaign_all_oracles_green(tmp_path, seed):
    config = ChaosConfig(seed=seed, events=70, network=True, shrink=False)
    result = ChaosScheduler(config, workdir=str(tmp_path)).run()
    assert result.ok, result.format_reproducer()
    assert result.events_run == 70
    wire = result.stats["wire"]
    assert wire["sheds_missing_retry_after"] == 0
    assert result.stats["proxy"]["connections"] >= 1
    # the tight admission burst must actually have exercised shedding —
    # otherwise the retry_after oracle is vacuous
    assert wire.get("sheds_honored", 0) >= 1
