"""Metamorphic properties of the PDR semantics.

These tests check *relations between answers* rather than answers
themselves: monotonicity in the threshold and the object set, equivariance
under translation, and additivity of density under object duplication.
They run against the brute-force oracle (exact by construction and
cross-validated against FR elsewhere), so a failure here indicts the
semantics, not an index.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.bruteforce import bruteforce_pdr
from repro.core.geometry import Rect
from repro.core.query import SnapshotPDRQuery

DOMAIN = Rect(0.0, 0.0, 100.0, 100.0)

positions_strategy = st.lists(
    st.tuples(st.floats(5, 95), st.floats(5, 95)), min_size=1, max_size=18
)


def answer(positions, rho, l=10.0, domain=DOMAIN):
    query = SnapshotPDRQuery(rho=rho, l=l, qt=0)
    return bruteforce_pdr(list(positions), domain, query).regions


class TestThresholdMonotonicity:
    @given(positions_strategy, st.floats(0.01, 0.05), st.floats(1.1, 3.0))
    @settings(max_examples=40, deadline=None)
    def test_higher_threshold_shrinks_answer(self, positions, rho, factor):
        low = answer(positions, rho)
        high = answer(positions, rho * factor)
        # high ⊆ low.
        assert high.difference_area(low) == pytest.approx(0.0, abs=1e-9)

    @given(positions_strategy)
    @settings(max_examples=20, deadline=None)
    def test_zero_threshold_is_everything(self, positions):
        region = answer(positions, 0.0)
        assert region.area() == pytest.approx(DOMAIN.area)

    @given(positions_strategy)
    @settings(max_examples=20, deadline=None)
    def test_impossible_threshold_is_empty(self, positions):
        # More objects required than exist anywhere.
        rho = (len(positions) + 1) / 100.0  # l^2 = 100
        assert answer(positions, rho).is_empty()


class TestObjectMonotonicity:
    @given(positions_strategy, st.tuples(st.floats(5, 95), st.floats(5, 95)),
           st.floats(0.01, 0.05))
    @settings(max_examples=40, deadline=None)
    def test_adding_an_object_never_shrinks(self, positions, extra, rho):
        base = answer(positions, rho)
        grown = answer(positions + [extra], rho)
        assert base.difference_area(grown) == pytest.approx(0.0, abs=1e-9)

    @given(positions_strategy, st.floats(0.01, 0.04))
    @settings(max_examples=30, deadline=None)
    def test_duplicating_objects_doubles_density(self, positions, rho):
        """D(S, rho) == D(S + S, 2*rho): density is additive in objects."""
        single = answer(positions, rho)
        doubled = answer(positions + positions, 2 * rho)
        assert single.symmetric_difference_area(doubled) == pytest.approx(
            0.0, abs=1e-9
        )

    @given(positions_strategy, st.floats(0.02, 0.05))
    @settings(max_examples=30, deadline=None)
    def test_union_contains_parts(self, positions, rho):
        half = len(positions) // 2
        a, b = positions[:half], positions[half:]
        union_region = answer(positions, rho)
        for part in (a, b):
            if not part:
                continue
            part_region = answer(part, rho)
            assert part_region.difference_area(union_region) == pytest.approx(
                0.0, abs=1e-9
            )


class TestTranslationEquivariance:
    @given(
        positions_strategy,
        st.floats(-20, 20),
        st.floats(-20, 20),
        st.floats(0.01, 0.05),
    )
    @settings(max_examples=30, deadline=None)
    def test_translate_world_translates_answer(self, positions, dx, dy, rho):
        base = answer(positions, rho)
        moved_positions = [(x + dx, y + dy) for x, y in positions]
        moved_domain = DOMAIN.translated(dx, dy)
        moved = bruteforce_pdr(
            moved_positions, moved_domain, SnapshotPDRQuery(rho=rho, l=10.0, qt=0)
        ).regions
        back = moved.translated(-dx, -dy)
        assert base.symmetric_difference_area(back) == pytest.approx(0.0, abs=1e-6)


class TestScaleInvariance:
    @given(positions_strategy, st.integers(1, 4))
    @settings(max_examples=25, deadline=None)
    def test_min_count_formulation_equivalent(self, positions, need):
        """(rho, l) only enter through rho*l^2: equal products, equal answers."""
        l = 10.0
        rho_a = need / (l * l)
        region_a = answer(positions, rho_a, l=l)
        # A different rho expressing the same required count.
        rho_b = (need - 0.5) / (l * l)  # counts are integers: same answer
        region_b = answer(positions, rho_b, l=l)
        assert region_a.symmetric_difference_area(region_b) == pytest.approx(
            0.0, abs=1e-9
        )


class TestNeighborhoodSize:
    @given(st.floats(5.0, 30.0))
    @settings(max_examples=20, deadline=None)
    def test_single_object_answer_is_l_square(self, l):
        region = answer([(50.0, 50.0)], rho=0.5 / (l * l), l=l)
        assert region.area() == pytest.approx(l * l)
        box = region.bounding_box()
        assert box.width == pytest.approx(l)
        assert box.height == pytest.approx(l)
        assert box.center.x == pytest.approx(50.0)
        assert box.center.y == pytest.approx(50.0)
