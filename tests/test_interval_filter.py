"""Tests for interval-level filtering and the optimised interval FR."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.errors import InvalidParameterError
from repro.core.query import IntervalPDRQuery
from repro.histogram.interval_filter import filter_query_interval
from repro.methods.interval import evaluate_interval, evaluate_interval_fr
from tests.conftest import populate_clustered
from repro.core.system import PDRServer


@pytest.fixture
def server(small_config):
    srv = PDRServer(small_config, expected_objects=150)
    populate_clustered(srv, 150, seed=4)
    return srv


def make_interval(server, varrho, qt1, qt2):
    base = server.make_query(qt=qt1, varrho=varrho)
    return IntervalPDRQuery(rho=base.rho, l=base.l, qt1=qt1, qt2=qt2)


class TestIntervalFilter:
    def test_window_validation(self, server):
        horizon = server.config.horizon
        query = make_interval(server, 2.0, 0, horizon + 1)
        with pytest.raises(InvalidParameterError):
            filter_query_interval(server.histogram, query)

    def test_masks_partition_cells(self, server):
        query = make_interval(server, 3.0, 0, 4)
        result = filter_query_interval(server.histogram, query)
        m = server.histogram.m
        total = result.accepted_count + result.rejected_count + result.candidate_count
        assert total == m * m
        assert not (result.accepted & result.rejected).any()
        assert not (result.accepted & result.candidate).any()

    def test_single_timestamp_matches_snapshot_filter(self, server):
        from repro.histogram.filter import filter_query

        query = make_interval(server, 3.0, 2, 2)
        interval = filter_query_interval(server.histogram, query)
        snapshot = filter_query(server.histogram, server.make_query(qt=2, varrho=3.0))
        assert (interval.accepted == snapshot.accepted).all()
        assert (interval.rejected == snapshot.rejected).all()
        assert (interval.candidate == snapshot.candidate).all()

    def test_accepted_grows_with_interval_length(self, server):
        short = filter_query_interval(
            server.histogram, make_interval(server, 3.0, 0, 0)
        )
        long = filter_query_interval(
            server.histogram, make_interval(server, 3.0, 0, 6)
        )
        # Union semantics: accepted cells accumulate, rejected cells shrink.
        assert (short.accepted & ~long.accepted).sum() == 0
        assert (long.rejected & ~short.rejected).sum() == 0

    def test_candidate_times_cover_candidates(self, server):
        query = make_interval(server, 3.0, 0, 4)
        result = filter_query_interval(server.histogram, query)
        for (i, j) in result.candidate_times:
            assert result.candidate[i, j]
            assert not result.accepted[i, j]
        # Every union-candidate cell needs at least one refinement snapshot.
        for i, j in zip(*np.nonzero(result.candidate)):
            assert (int(i), int(j)) in result.candidate_times

    def test_refinement_snapshots_counted(self, server):
        query = make_interval(server, 3.0, 0, 3)
        result = filter_query_interval(server.histogram, query)
        assert result.refinement_snapshots() == sum(
            len(v) for v in result.candidate_times.values()
        )


class TestOptimizedIntervalFR:
    def test_matches_naive_union(self, server):
        from repro.methods.fr import FRMethod

        fr = FRMethod(server.histogram, server.tree)
        query = make_interval(server, 3.0, 0, 4)
        naive = evaluate_interval(lambda s: fr.query(s), query)
        optimized = evaluate_interval_fr(fr, query)
        assert optimized.regions.symmetric_difference_area(
            naive.regions
        ) == pytest.approx(0.0, abs=1e-6)

    def test_saves_refinement_work(self, server):
        from repro.methods.fr import FRMethod

        fr = FRMethod(server.histogram, server.tree)
        query = make_interval(server, 3.0, 0, 6)
        naive = evaluate_interval(lambda s: fr.query(s), query)
        optimized = evaluate_interval_fr(fr, query)
        # The optimised evaluator inspects at most as many objects (it skips
        # refinement at timestamps covered by union-accepted cells).
        assert optimized.stats.objects_examined <= naive.stats.objects_examined
        assert optimized.stats.method == "fr-interval-optimized"

    def test_stats_fields(self, server):
        from repro.methods.fr import FRMethod

        fr = FRMethod(server.histogram, server.tree)
        query = make_interval(server, 3.0, 1, 3)
        result = evaluate_interval_fr(fr, query)
        m2 = server.histogram.m ** 2
        assert (
            result.stats.accepted_cells
            + result.stats.rejected_cells
            + result.stats.candidate_cells
            == m2
        )
        assert "refinement_snapshots" in result.stats.extra
