"""Exporters and the ``repro metrics`` CLI face of the telemetry layer.

Renders are validated with :mod:`tests.prometheus_checker`, the same
line-format checker the CI metrics-smoke job runs against a live scrape,
so a formatting regression fails here before it fails in CI.
"""

from __future__ import annotations

import json
import os
import pathlib
import subprocess
import sys
import urllib.error
import urllib.request

import pytest

from tests.prometheus_checker import check_prometheus_text
from repro.telemetry import (
    REQUIRED_FAMILIES,
    TELEMETRY,
    MetricsRegistry,
    Telemetry,
    load_snapshot,
    render_json,
    render_prometheus,
    save_snapshot,
    serve_metrics,
)


@pytest.fixture(autouse=True)
def clean_telemetry():
    TELEMETRY.enable()
    TELEMETRY.reset()
    yield
    TELEMETRY.enable()
    TELEMETRY.reset()


def _tiny_registry() -> MetricsRegistry:
    reg = MetricsRegistry()
    reg.counter("req_total", "requests", labelnames=("method",)).labels("fr").inc(3)
    reg.gauge("lag", "replication lag").set(1.5)
    hist = reg.histogram("lat_seconds", "latency", buckets=(0.1, 1.0))
    hist.observe(0.05)
    hist.observe(0.5)
    return reg


class TestPrometheusRendering:
    def test_counter_gauge_histogram_lines(self):
        text = render_prometheus(_tiny_registry().snapshot())
        lines = text.splitlines()
        assert "# TYPE req_total counter" in lines
        assert 'req_total{method="fr"} 3' in lines
        assert "lag 1.5" in lines
        assert 'lat_seconds_bucket{le="0.1"} 1' in lines
        assert 'lat_seconds_bucket{le="1"} 2' in lines
        assert 'lat_seconds_bucket{le="+Inf"} 2' in lines
        assert "lat_seconds_sum 0.55" in lines
        assert "lat_seconds_count 2" in lines
        assert text.endswith("\n")

    def test_counter_name_gains_total_suffix(self):
        reg = MetricsRegistry()
        reg.counter("oops", "no suffix").inc()
        text = render_prometheus(reg.snapshot())
        assert "# TYPE oops_total counter" in text
        assert "\noops_total 1\n" in text

    def test_label_values_are_escaped(self):
        reg = MetricsRegistry()
        reg.counter("c_total", labelnames=("k",)).labels('a"b\\c\nd').inc()
        text = render_prometheus(reg.snapshot())
        assert 'c_total{k="a\\"b\\\\c\\nd"} 1' in text

    def test_render_passes_the_checker(self):
        problems = check_prometheus_text(
            render_prometheus(_tiny_registry().snapshot())
        )
        assert problems == []

    def test_checker_catches_malformed_lines(self):
        assert check_prometheus_text("not a metric line at all\n")
        assert check_prometheus_text(
            "# TYPE x counter\nx_total{l=} 1\n"
        )
        assert check_prometheus_text(
            "", required_families=("repro_query_seconds",)
        ) == [
            "required family repro_query_seconds has no TYPE header",
        ]
        # headers alone do not satisfy a required family
        header_only = (
            "# HELP repro_query_seconds q\n# TYPE repro_query_seconds histogram\n"
        )
        assert check_prometheus_text(
            header_only, required_families=("repro_query_seconds",)
        ) == ["required family repro_query_seconds has no sample lines"]


class TestJsonAndSnapshots:
    def test_render_json_embeds_slow_queries(self):
        payload = json.loads(
            render_json(_tiny_registry().snapshot(), slow_queries={"entries": []})
        )
        assert {f["name"] for f in payload["families"]} == {
            "req_total", "lag", "lat_seconds",
        }
        assert payload["slow_queries"] == {"entries": []}

    def test_save_load_roundtrip_renders_identically(self, tmp_path):
        reg = _tiny_registry()
        path = str(tmp_path / "snap.json")
        save_snapshot(reg.snapshot(), path, slow_queries={"entries": []})
        loaded = load_snapshot(path)
        assert render_prometheus(loaded) == render_prometheus(reg.snapshot())
        assert loaded["slow_queries"] == {"entries": []}

    def test_histogram_snapshot_carries_quantiles(self):
        snap = _tiny_registry().snapshot()
        (hist,) = [f for f in snap["families"] if f["name"] == "lat_seconds"]
        quantiles = hist["series"][0]["quantiles"]
        assert set(quantiles) == {"p50", "p95", "p99"}
        assert 0.0 <= quantiles["p50"] <= 1.0


class TestHTTPEndpoint:
    def test_scrape_and_json_routes(self):
        hub = Telemetry()
        hub.registry.counter("hits_total", "hits").inc(5)
        server = serve_metrics(hub, port=0)
        try:
            port = server.server_address[1]
            body = urllib.request.urlopen(
                f"http://127.0.0.1:{port}/metrics", timeout=5
            ).read().decode()
            assert "hits_total 5" in body
            assert check_prometheus_text(body) == []
            payload = json.loads(
                urllib.request.urlopen(
                    f"http://127.0.0.1:{port}/metrics.json", timeout=5
                ).read().decode()
            )
            assert payload["families"][0]["name"] == "hits_total"
            assert "slow_queries" in payload
            with pytest.raises(urllib.error.HTTPError):
                urllib.request.urlopen(
                    f"http://127.0.0.1:{port}/nope", timeout=5
                )
        finally:
            server.shutdown()


_REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent


def _subprocess_env() -> dict:
    env = dict(os.environ)
    src = str(_REPO_ROOT / "src")
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = src if not existing else src + os.pathsep + existing
    return env


def _run_cli(*argv, check=True):
    proc = subprocess.run(
        [sys.executable, "-m", "repro.cli", *argv],
        capture_output=True,
        text=True,
        timeout=300,
        env=_subprocess_env(),
    )
    if check and proc.returncode != 0:
        raise AssertionError(
            f"repro {' '.join(argv)} failed rc={proc.returncode}:\n{proc.stderr}"
        )
    return proc


class TestMetricsCLI:
    def test_probe_scrape_covers_required_families(self):
        proc = _run_cli("metrics", "--format", "prometheus")
        problems = check_prometheus_text(
            proc.stdout, required_families=REQUIRED_FAMILIES
        )
        assert problems == []

    def test_json_format_includes_slow_queries(self):
        proc = _run_cli("metrics", "--format", "json")
        payload = json.loads(proc.stdout)
        assert payload["slow_queries"]["entries"]  # the probe ran queries
        names = {f["name"] for f in payload["families"]}
        assert set(REQUIRED_FAMILIES) <= names

    def test_from_snapshot_roundtrip(self, tmp_path):
        snap = str(tmp_path / "world.json")
        metrics = str(tmp_path / "m.json")
        _run_cli(
            "simulate", "--objects", "25", "--seed", "5",
            "--out", snap, "--metrics-out", metrics,
        )
        proc = _run_cli("metrics", "--from", metrics)
        assert check_prometheus_text(proc.stdout) == []
        # the snapshot carries the full family catalogue
        payload = json.loads(
            _run_cli("metrics", "--from", metrics, "--format", "json").stdout
        )
        assert set(REQUIRED_FAMILIES) <= {f["name"] for f in payload["families"]}

    def test_query_metrics_out_records_the_query(self, tmp_path):
        snap = str(tmp_path / "world.json")
        metrics = str(tmp_path / "q.json")
        _run_cli("simulate", "--objects", "25", "--seed", "5", "--out", snap)
        _run_cli(
            "query", "--snapshot", snap, "--method", "fr", "--varrho", "1.5",
            "--metrics-out", metrics,
        )
        text = _run_cli("metrics", "--from", metrics).stdout
        assert 'repro_query_total{method="fr",outcome="ok"} 1' in text

    def test_unreadable_snapshot_maps_to_storage_exit_code(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("not json")
        proc = _run_cli("metrics", "--from", str(bad), check=False)
        assert proc.returncode == 3  # StorageError
        assert "unreadable telemetry snapshot" in proc.stderr

    def test_out_writes_the_scrape_to_a_file(self, tmp_path):
        out = tmp_path / "scrape.prom"
        _run_cli("metrics", "--out", str(out))
        assert check_prometheus_text(
            out.read_text(), required_families=REQUIRED_FAMILIES
        ) == []

    def test_checker_cli_accepts_the_probe_scrape(self, tmp_path):
        out = tmp_path / "scrape.prom"
        _run_cli("metrics", "--out", str(out))
        proc = subprocess.run(
            [sys.executable, str(_REPO_ROOT / "tests" / "prometheus_checker.py"),
             str(out)],
            capture_output=True,
            text=True,
            timeout=60,
            env=_subprocess_env(),
        )
        assert proc.returncode == 0, proc.stderr
